//! # tamp-par — deterministic parallel run-orchestration
//!
//! Every multi-run workload in this workspace (chaos sweeps, shrinking,
//! the A9 scale sweep, ablation grids, the differential test suite) is a
//! map over a dense index space where each job is a *sealed
//! deterministic world* keyed by `(config, seed)`: no job observes
//! another, and the consumer wants the results **in submission order**.
//! That shape makes cross-run parallelism free speedup — as long as the
//! orchestration layer never lets execution order leak into anything a
//! consumer can observe.
//!
//! [`Pool`] enforces that contract:
//!
//! * Jobs carry a dense index `0..len`. Workers claim indices from a
//!   shared atomic counter (work-stealing order, nondeterministic) but
//!   results are re-sequenced through a [`BTreeMap`] buffer and handed
//!   to the single consumer callback strictly in index order. Anything
//!   derived from the consumer — stdout reports, CSV/JSONL exports,
//!   oracle verdict aggregation, shrink candidate adoption — is
//!   byte-identical to the sequential runner.
//! * The consumer can stop early ([`ControlFlow::Break`]): exactly the
//!   results before the break point are observed; speculative results
//!   for later indices are discarded unseen and workers quit at their
//!   next claim. Jobs must therefore be side-effect-free (print from
//!   the consumer, never from a job).
//! * A panicking job does not tear anything down by itself: its payload
//!   travels back tagged with the job index and is re-raised **when the
//!   consumer reaches that index**, so the lowest panicking index wins —
//!   the same panic the sequential loop would have surfaced — with the
//!   run index prepended to the message.
//! * `jobs == 1` short-circuits to a plain inline loop: today's exact
//!   sequential code path, no threads, no `catch_unwind`.
//!
//! The pool is std-only (`std::thread::scope` + `mpsc`): the build
//! environment has no registry access and the vendored crates are
//! stubs, so this is deliberately dependency-free.
//!
//! See `docs/PERFORMANCE.md` for the full determinism contract and when
//! `--jobs 1` is still required.

use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

/// The worker count used when the user doesn't pass `--jobs`: the
/// `TAMP_JOBS` environment variable if set to a positive integer, else
/// [`std::thread::available_parallelism`], else 1.
pub fn default_jobs() -> usize {
    match std::env::var("TAMP_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// A deterministic scoped worker pool. Cheap to construct (holds no
/// threads — each [`Pool::ordered_scan`] call spawns and joins its own
/// scoped workers), so pass it by reference through orchestration
/// layers and nest freely (the sweep runner hands its pool to the
/// shrinker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool running `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Pool { jobs: jobs.max(1) }
    }

    /// The sequential pool: `ordered_scan` degenerates to an inline
    /// `for` loop, byte- and panic-identical to pre-pool code.
    pub fn sequential() -> Self {
        Pool::new(1)
    }

    /// A pool sized by [`default_jobs`].
    pub fn from_env() -> Self {
        Pool::new(default_jobs())
    }

    /// Worker count this pool runs with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run `f(0), f(1), …, f(len - 1)` across the pool's workers and
    /// feed the results to `consume` **strictly in index order**,
    /// stopping after the first [`ControlFlow::Break`].
    ///
    /// `f` must be a pure function of its index (plus captured shared
    /// state): with more than one worker it runs speculatively and out
    /// of order, and results past a break point are dropped unseen.
    /// `consume` runs on the calling thread only.
    ///
    /// If `f(i)` panics, the panic is re-raised here once the consumer
    /// reaches index `i` — after `consume` has seen every result before
    /// `i`, exactly as a sequential loop would — with the job index
    /// prepended to string payloads.
    pub fn ordered_scan<T, F, C>(&self, len: usize, f: F, mut consume: C)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FnMut(usize, T) -> ControlFlow<()>,
    {
        if self.jobs == 1 || len <= 1 {
            // Sequential fast path: the pre-pool code, verbatim. No
            // threads, no unwind-catching, no buffering.
            for i in 0..len {
                if consume(i, f(i)).is_break() {
                    return;
                }
            }
            return;
        }

        type Caught<T> = Result<T, Box<dyn std::any::Any + Send + 'static>>;
        let workers = self.jobs.min(len);
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<(usize, Caught<T>)>();

        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let (f, next, stop) = (&f, &next, &stop);
                s.spawn(move || loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        return;
                    }
                    // Catch panics instead of unwinding the worker: a
                    // crashing job must not prevent earlier-indexed
                    // jobs from being claimed and delivered, or the
                    // resequencer could never *reach* the crash in
                    // order. Only the consumer sets `stop`.
                    let r = catch_unwind(AssertUnwindSafe(|| f(i)));
                    if tx.send((i, r)).is_err() {
                        return; // consumer gone (early stop)
                    }
                });
            }
            drop(tx);

            // Re-sequence: buffer out-of-order arrivals, release in
            // index order. Every index below `len` is eventually sent
            // unless `stop` was raised, and `stop` is only raised on
            // the two paths that leave this loop — so `recv` can't
            // deadlock.
            let mut pending: BTreeMap<usize, Caught<T>> = BTreeMap::new();
            let mut expect = 0usize;
            while expect < len {
                let Ok((i, r)) = rx.recv() else { break };
                pending.insert(i, r);
                while let Some(r) = pending.remove(&expect) {
                    let i = expect;
                    expect += 1;
                    match r {
                        Ok(v) => {
                            if consume(i, v).is_break() {
                                stop.store(true, Ordering::Relaxed);
                                return;
                            }
                        }
                        Err(payload) => {
                            stop.store(true, Ordering::Relaxed);
                            rethrow(i, payload);
                        }
                    }
                }
            }
        });
    }

    /// Run `f` over `0..len` and collect the results in index order.
    pub fn ordered_map<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out = Vec::with_capacity(len);
        self.ordered_scan(len, f, |_, v| {
            out.push(v);
            ControlFlow::Continue(())
        });
        out
    }

    /// Pin one long-lived worker to each contiguous chunk of `items` and
    /// let `drive` run any number of synchronous request/reply *rounds*
    /// against them. Built for barrier-style engines (the sharded netsim
    /// epoch loop) where per-round thread spawning would dominate: the
    /// workers persist across every [`Rounds::round`] call that `drive`
    /// makes, each owning its `&mut` chunk for the whole session.
    ///
    /// Per round, request `i` is handed to the worker owning `items[i]`
    /// as `work(i, &mut items[i], req)`, and the replies come back as a
    /// `Vec` **in index order** — never in completion order — so
    /// anything `drive` derives from them is byte-identical at any
    /// worker count. With `jobs == 1` (or fewer than two items) no
    /// threads are spawned at all: rounds run as a plain inline loop,
    /// the exact sequential code path.
    ///
    /// A panic inside `work` is re-raised out of the `round` call once
    /// all replies are in, lowest index first (like
    /// [`Pool::ordered_scan`]), with the item index prepended.
    pub fn rendezvous<T, Q, R, Out, W, F>(&self, items: &mut [T], work: W, drive: F) -> Out
    where
        T: Send,
        Q: Send,
        R: Send,
        W: Fn(usize, &mut T, Q) -> R + Sync,
        F: FnOnce(&mut Rounds<'_, Q, R>) -> Out,
    {
        let n = items.len();
        if self.jobs == 1 || n <= 1 {
            // Sequential fast path: no threads, no unwind-catching.
            let work = &work;
            let mut inline = move |reqs: Vec<Q>| -> Vec<R> {
                assert_eq!(reqs.len(), n, "rendezvous round size mismatch");
                reqs.into_iter()
                    .enumerate()
                    .map(|(i, q)| work(i, &mut items[i], q))
                    .collect()
            };
            let mut rounds = Rounds {
                inner: RoundsInner::Inline(&mut inline),
            };
            return drive(&mut rounds);
        }

        type Caught<R> = Result<R, Box<dyn std::any::Any + Send + 'static>>;
        let workers = self.jobs.min(n);
        let chunk = n.div_ceil(workers);
        let (reply_tx, reply_rx) = mpsc::channel::<(usize, Caught<R>)>();
        std::thread::scope(|s| {
            let mut req_txs = Vec::with_capacity(workers);
            for (w, chunk_items) in items.chunks_mut(chunk).enumerate() {
                let base = w * chunk;
                let (tx, rx) = mpsc::channel::<Vec<(usize, Q)>>();
                req_txs.push(tx);
                let reply_tx = reply_tx.clone();
                let work = &work;
                s.spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        for (local, q) in batch {
                            // Catch instead of unwinding the worker so
                            // the round still completes (every reply
                            // arrives) and the *lowest* panicking index
                            // is the one re-raised, as sequentially.
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                work(base + local, &mut chunk_items[local], q)
                            }));
                            if reply_tx.send((base + local, r)).is_err() {
                                return; // driver gone (unwinding)
                            }
                        }
                    }
                });
            }
            drop(reply_tx);
            let mut rounds = Rounds {
                inner: RoundsInner::Threaded {
                    dispatch: Box::new(move |reqs: Vec<Q>| {
                        assert_eq!(reqs.len(), n, "rendezvous round size mismatch");
                        let mut batches: Vec<Vec<(usize, Q)>> =
                            (0..req_txs.len()).map(|_| Vec::new()).collect();
                        for (i, q) in reqs.into_iter().enumerate() {
                            batches[i / chunk].push((i % chunk, q));
                        }
                        for (w, batch) in batches.into_iter().enumerate() {
                            req_txs[w]
                                .send(batch)
                                .expect("rendezvous worker exited early");
                        }
                        let mut out: Vec<Option<Caught<R>>> = (0..n).map(|_| None).collect();
                        for _ in 0..n {
                            let (i, r) = reply_rx.recv().expect("rendezvous worker lost");
                            out[i] = Some(r);
                        }
                        let mut results = Vec::with_capacity(n);
                        for (i, slot) in out.into_iter().enumerate() {
                            match slot.expect("duplicate rendezvous reply") {
                                Ok(v) => results.push(v),
                                Err(payload) => rethrow(i, payload),
                            }
                        }
                        results
                    }),
                },
            };
            drive(&mut rounds)
            // `rounds` drops here, closing the request channels; the
            // scope then joins every worker (they exit on recv error).
        })
    }
}

/// Round handle passed to the `drive` closure of [`Pool::rendezvous`].
pub struct Rounds<'a, Q, R> {
    inner: RoundsInner<'a, Q, R>,
}

enum RoundsInner<'a, Q, R> {
    /// `jobs == 1`: the inline loop over the items, no threads.
    Inline(&'a mut dyn FnMut(Vec<Q>) -> Vec<R>),
    /// Dispatch a round to the persistent workers and re-sequence the
    /// replies.
    Threaded {
        dispatch: Box<dyn FnMut(Vec<Q>) -> Vec<R> + 'a>,
    },
}

impl<Q, R> Rounds<'_, Q, R> {
    /// Run one barrier round: request `i` goes to `items[i]`'s worker,
    /// and the replies return in index order. `reqs.len()` must equal
    /// the item count.
    pub fn round(&mut self, reqs: Vec<Q>) -> Vec<R> {
        match &mut self.inner {
            RoundsInner::Inline(f) => f(reqs),
            RoundsInner::Threaded { dispatch } => dispatch(reqs),
        }
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

/// Re-raise a job's panic on the consumer thread, prepending the job
/// index to string payloads (the common `panic!("…")` case) so failures
/// out of a sweep identify their run. Non-string payloads are resumed
/// untouched.
fn rethrow(index: usize, payload: Box<dyn std::any::Any + Send + 'static>) -> ! {
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()));
    match msg {
        Some(m) => panic!("parallel job {index} panicked: {m}"),
        None => resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A job function with deliberately skewed run times so that, with
    /// several workers, completion order differs from index order.
    fn skewed(i: usize) -> usize {
        // Later indices finish first.
        std::thread::sleep(std::time::Duration::from_micros(
            ((97 - i as u64 % 97) % 7) * 300,
        ));
        i * i
    }

    #[test]
    fn ordered_map_matches_sequential_at_any_width() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = Pool::new(jobs).ordered_map(97, skewed);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn consumer_observes_results_in_index_order() {
        let mut seen = Vec::new();
        Pool::new(8).ordered_scan(50, skewed, |i, v| {
            seen.push((i, v));
            ControlFlow::Continue(())
        });
        let expected: Vec<(usize, usize)> = (0..50).map(|i| (i, i * i)).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn early_stop_observes_exactly_the_prefix() {
        for jobs in [1, 4, 16] {
            let ran = AtomicUsize::new(0);
            let mut seen = Vec::new();
            Pool::new(jobs).ordered_scan(
                1000,
                |i| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    skewed(i)
                },
                |i, v| {
                    seen.push((i, v));
                    if i == 9 {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            );
            // The consumer saw exactly indices 0..=9 in order, no
            // matter how many jobs ran speculatively.
            let expected: Vec<(usize, usize)> = (0..=9).map(|i| (i, i * i)).collect();
            assert_eq!(seen, expected, "jobs={jobs}");
            // And the speculation is bounded: workers stop claiming
            // once the break lands (generous slack for in-flight
            // claims).
            assert!(
                ran.load(Ordering::Relaxed) < 1000,
                "jobs={jobs}: every job ran despite early stop"
            );
        }
    }

    #[test]
    fn panic_propagates_with_run_index_and_in_order() {
        for jobs in [2, 8] {
            let mut seen = Vec::new();
            let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
                Pool::new(jobs).ordered_scan(
                    40,
                    |i| {
                        if i == 7 || i == 23 {
                            panic!("boom at {i}");
                        }
                        skewed(i)
                    },
                    |i, v| {
                        seen.push((i, v));
                        ControlFlow::Continue(())
                    },
                );
            }))
            .expect_err("pool must re-raise the job panic");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .expect("string panic payload");
            // The *lowest* panicking index wins (sequential order), and
            // the message carries the run index.
            assert!(
                msg.contains("parallel job 7") && msg.contains("boom at 7"),
                "jobs={jobs}: unexpected panic message: {msg}"
            );
            // Everything before the panicking index was consumed first.
            let expected: Vec<(usize, usize)> = (0..7).map(|i| (i, i * i)).collect();
            assert_eq!(seen, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn sequential_pool_panics_inline_without_wrapping() {
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Pool::sequential().ordered_map(10, |i| {
                if i == 3 {
                    panic!("plain");
                }
                i
            });
        }))
        .expect_err("must panic");
        // jobs=1 is the pre-pool code path: the payload is untouched.
        assert_eq!(err.downcast_ref::<&str>(), Some(&"plain"));
    }

    #[test]
    fn empty_and_single_inputs_work_at_any_width() {
        for jobs in [1, 4] {
            assert_eq!(Pool::new(jobs).ordered_map(0, |i| i), Vec::<usize>::new());
            assert_eq!(Pool::new(jobs).ordered_map(1, |i| i + 41), vec![41]);
        }
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
    }

    #[test]
    fn rendezvous_rounds_match_sequential_at_any_width() {
        // Each item is an accumulator; each round adds the request and
        // replies with the running total. Whatever the worker count,
        // every round's reply vector must equal the jobs=1 run.
        let run = |jobs: usize| -> Vec<Vec<u64>> {
            let mut items: Vec<u64> = (0..13).map(|i| i as u64).collect();
            Pool::new(jobs).rendezvous(
                &mut items,
                |_i, acc: &mut u64, q: u64| {
                    *acc += q;
                    *acc
                },
                |rounds| {
                    (0..5)
                        .map(|r| rounds.round((0..13).map(|i| (r * i) as u64).collect()))
                        .collect()
                },
            )
        };
        let expected = run(1);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(run(jobs), expected, "jobs={jobs}");
        }
    }

    #[test]
    fn rendezvous_workers_persist_state_across_rounds() {
        let mut items = vec![0u64; 4];
        let totals = Pool::new(4).rendezvous(
            &mut items,
            |i, acc: &mut u64, q: u64| {
                *acc += q + i as u64;
                *acc
            },
            |rounds| {
                rounds.round(vec![10; 4]);
                rounds.round(vec![100; 4])
            },
        );
        // Two rounds accumulated into the same per-item state.
        assert_eq!(totals, vec![110, 112, 114, 116]);
        assert_eq!(items, vec![110, 112, 114, 116]);
    }

    #[test]
    fn rendezvous_panic_carries_lowest_index() {
        for jobs in [2, 8] {
            let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let mut items = vec![(); 20];
                Pool::new(jobs).rendezvous(
                    &mut items,
                    |i, _item: &mut (), _q: ()| {
                        if i == 5 || i == 17 {
                            panic!("round boom {i}");
                        }
                    },
                    |rounds| {
                        rounds.round(vec![(); 20]);
                    },
                );
            }))
            .expect_err("rendezvous must re-raise the worker panic");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .expect("string panic payload");
            assert!(
                msg.contains("parallel job 5") && msg.contains("round boom 5"),
                "jobs={jobs}: unexpected panic message: {msg}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "round size mismatch")]
    fn rendezvous_rejects_wrong_round_size() {
        let mut items = vec![0u8; 3];
        Pool::new(2).rendezvous(
            &mut items,
            |_i, _item: &mut u8, _q: u8| (),
            |rounds| {
                rounds.round(vec![1, 2]); // 2 requests for 3 items
            },
        );
    }

    #[test]
    fn nested_pools_compose() {
        // The sweep runner hands its pool to the shrinker: an
        // ordered_scan inside an ordered_scan consumer must work.
        let outer = Pool::new(4);
        let got = outer.ordered_map(6, |i| {
            let inner: usize = Pool::new(2).ordered_map(5, move |j| i * j).iter().sum();
            inner
        });
        let expected: Vec<usize> = (0..6).map(|i| i * 10).collect();
        assert_eq!(got, expected);
    }
}
