//! Thompson NFA construction and breadth-first simulation.
//!
//! The compiled [`Program`] is a flat vector of instructions in the style
//! of Pike's VM: `Char`-class tests consume one input character, `Split`
//! and `Jmp` route control flow, `Save`-free (we only answer boolean
//! match questions). Simulation advances a set of live threads one input
//! character at a time, which bounds matching cost at
//! `O(program_len × input_len)` regardless of the pattern.

use crate::parser::{Ast, ClassItem};

/// One VM instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Inst {
    /// Consume one character if it satisfies the test.
    Char(CharTest),
    /// Try `a` first, then `b` (order irrelevant for boolean matching).
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Matches only at input start.
    AssertStart,
    /// Matches only at input end.
    AssertEnd,
    /// Accept.
    Match,
}

/// Predicate on a single character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CharTest {
    Literal(char),
    Any,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
}

impl CharTest {
    fn matches(&self, c: char) -> bool {
        match self {
            CharTest::Literal(l) => *l == c,
            CharTest::Any => true,
            CharTest::Class { negated, items } => {
                let inside = items.iter().any(|item| match item {
                    ClassItem::Char(x) => *x == c,
                    ClassItem::Range(lo, hi) => *lo <= c && c <= *hi,
                });
                inside != *negated
            }
        }
    }
}

/// A compiled pattern.
#[derive(Debug, Clone)]
pub(crate) struct Program {
    insts: Vec<Inst>,
}

impl Program {
    pub(crate) fn compile(ast: &Ast) -> Program {
        let mut insts = Vec::new();
        emit(&mut insts, ast);
        insts.push(Inst::Match);
        Program { insts }
    }

    /// Run the NFA over `input`. With `full`, the match must span the
    /// whole input; otherwise any substring suffices (an implicit `.*` is
    /// simulated on both ends by seeding threads at every position and
    /// accepting mid-input matches).
    pub(crate) fn search(&self, input: &str, full: bool) -> bool {
        let mut current = ThreadSet::new(self.insts.len());
        let mut next = ThreadSet::new(self.insts.len());

        let chars: Vec<char> = input.chars().collect();
        let n = chars.len();

        self.add_thread(&mut current, 0, 0, n);
        for (i, &c) in chars.iter().enumerate() {
            if !full {
                // Unanchored: a new attempt may start at every offset.
                self.add_thread(&mut current, 0, i, n);
            }
            if current.accepted && !full {
                return true;
            }
            if full && current.accepted && i < n {
                // Accepted before consuming all input: only a real match
                // for full mode if we're at the end, which we are not.
                current.accepted = false;
            }
            next.clear();
            for ti in 0..current.list.len() {
                let pc = current.list[ti];
                if let Inst::Char(test) = &self.insts[pc] {
                    if test.matches(c) {
                        self.add_thread(&mut next, pc + 1, i + 1, n);
                    }
                }
            }
            std::mem::swap(&mut current, &mut next);
        }
        if !full {
            self.add_thread(&mut current, 0, n, n);
        }
        current.accepted
    }

    /// Add `pc` and everything ε-reachable from it to `set`. `pos`/`len`
    /// resolve the anchor assertions.
    fn add_thread(&self, set: &mut ThreadSet, pc: usize, pos: usize, len: usize) {
        if set.seen[pc] {
            return;
        }
        set.seen[pc] = true;
        match &self.insts[pc] {
            Inst::Jmp(t) => self.add_thread(set, *t, pos, len),
            Inst::Split(a, b) => {
                self.add_thread(set, *a, pos, len);
                self.add_thread(set, *b, pos, len);
            }
            Inst::AssertStart => {
                if pos == 0 {
                    self.add_thread(set, pc + 1, pos, len);
                }
            }
            Inst::AssertEnd => {
                if pos == len {
                    self.add_thread(set, pc + 1, pos, len);
                }
            }
            Inst::Match => set.accepted = true,
            Inst::Char(_) => set.list.push(pc),
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.insts.len()
    }
}

/// Live thread set for one simulation step.
struct ThreadSet {
    list: Vec<usize>,
    seen: Vec<bool>,
    accepted: bool,
}

impl ThreadSet {
    fn new(n: usize) -> Self {
        ThreadSet {
            list: Vec::with_capacity(n),
            seen: vec![false; n],
            accepted: false,
        }
    }

    fn clear(&mut self) {
        self.list.clear();
        self.seen.iter_mut().for_each(|s| *s = false);
        self.accepted = false;
    }
}

/// Emit instructions for `ast`, appending to `insts`.
fn emit(insts: &mut Vec<Inst>, ast: &Ast) {
    match ast {
        Ast::Empty => {}
        Ast::Literal(c) => insts.push(Inst::Char(CharTest::Literal(*c))),
        Ast::AnyChar => insts.push(Inst::Char(CharTest::Any)),
        Ast::Class { negated, items } => insts.push(Inst::Char(CharTest::Class {
            negated: *negated,
            items: items.clone(),
        })),
        Ast::StartAnchor => insts.push(Inst::AssertStart),
        Ast::EndAnchor => insts.push(Inst::AssertEnd),
        Ast::Concat(parts) => {
            for p in parts {
                emit(insts, p);
            }
        }
        Ast::Alternate(branches) => {
            // Chain of splits; each branch jumps to the common exit.
            let mut jmp_fixups = Vec::new();
            for (i, b) in branches.iter().enumerate() {
                if i + 1 < branches.len() {
                    let split_at = insts.len();
                    insts.push(Inst::Split(0, 0)); // fixed below
                    emit(insts, b);
                    jmp_fixups.push(insts.len());
                    insts.push(Inst::Jmp(0)); // fixed below
                    let after = insts.len();
                    insts[split_at] = Inst::Split(split_at + 1, after);
                } else {
                    emit(insts, b);
                }
            }
            let end = insts.len();
            for f in jmp_fixups {
                insts[f] = Inst::Jmp(end);
            }
        }
        Ast::Repeat { inner, min, max } => emit_repeat(insts, inner, *min, *max),
    }
}

fn emit_repeat(insts: &mut Vec<Inst>, inner: &Ast, min: u32, max: Option<u32>) {
    // Mandatory copies.
    for _ in 0..min {
        emit(insts, inner);
    }
    match max {
        None => {
            if min == 0 {
                // e* : split over (e, jmp-back)
                let split_at = insts.len();
                insts.push(Inst::Split(0, 0));
                emit(insts, inner);
                insts.push(Inst::Jmp(split_at));
                let after = insts.len();
                insts[split_at] = Inst::Split(split_at + 1, after);
            } else {
                // e{min,} : after the mandatory copies, loop the last one.
                // Emit one more optional looping copy: split -> (e, out),
                // with e jumping back to the split.
                let split_at = insts.len();
                insts.push(Inst::Split(0, 0));
                emit(insts, inner);
                insts.push(Inst::Jmp(split_at));
                let after = insts.len();
                insts[split_at] = Inst::Split(split_at + 1, after);
            }
        }
        Some(max) => {
            // (max - min) optional copies, each individually skippable to
            // the common exit.
            let opt = max - min;
            let mut split_fixups = Vec::new();
            for _ in 0..opt {
                let split_at = insts.len();
                insts.push(Inst::Split(0, 0));
                split_fixups.push(split_at);
                emit(insts, inner);
            }
            let end = insts.len();
            for s in split_fixups {
                insts[s] = Inst::Split(s + 1, end);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn prog(p: &str) -> Program {
        Program::compile(&parse(p).unwrap())
    }

    #[test]
    fn program_sizes_are_modest() {
        assert_eq!(prog("abc").len(), 4); // 3 chars + match
        assert!(prog("a{256}").len() <= 258);
    }

    #[test]
    fn char_test_class_negation() {
        let t = CharTest::Class {
            negated: true,
            items: vec![ClassItem::Range('0', '9')],
        };
        assert!(t.matches('a'));
        assert!(!t.matches('5'));
    }

    #[test]
    fn full_vs_search_semantics() {
        let p = prog("ab");
        assert!(p.search("ab", true));
        assert!(!p.search("xab", true));
        assert!(p.search("xab", false));
        assert!(p.search("abx", false));
        assert!(!p.search("abx", true));
    }

    #[test]
    fn bounded_repeat_vm() {
        let p = prog("a{2,4}");
        assert!(!p.search("a", true));
        assert!(p.search("aa", true));
        assert!(p.search("aaaa", true));
        assert!(!p.search("aaaaa", true));
    }

    #[test]
    fn min_unbounded_repeat_vm() {
        let p = prog("a{2,}");
        assert!(!p.search("a", true));
        assert!(p.search("aa", true));
        assert!(p.search("aaaaaa", true));
    }

    #[test]
    fn empty_program_matches_empty_only_when_full() {
        let p = prog("");
        assert!(p.search("", true));
        assert!(!p.search("x", true));
        assert!(p.search("x", false));
    }

    #[test]
    fn anchors_in_vm() {
        let p = prog("^a+$");
        assert!(p.search("aaa", false));
        assert!(!p.search("aaab", false));
        assert!(!p.search("baaa", false));
    }
}
