//! # tamp-regexlite — a small, dependency-free regex engine
//!
//! The membership service API supports "regular expressions both in the
//! service name and the partition list" (paper §5). This crate provides
//! the engine behind that: a classic Thompson-NFA construction with
//! breadth-first simulation, so matching is **linear** in the input length
//! and never backtracks (no pathological inputs, which matters for a
//! lookup that sits on the request path of every service invocation).
//!
//! Supported syntax:
//!
//! | Form | Meaning |
//! |---|---|
//! | `a`, `\*` | literal character (escape metacharacters with `\`) |
//! | `.` | any single character |
//! | `[abc]`, `[a-z0-9]`, `[^abc]` | character classes, ranges, negation |
//! | `\d`, `\w`, `\s` (+ negations, and inside classes) | digit / word / whitespace shorthands |
//! | `x*`, `x+`, `x?` | zero-or-more, one-or-more, optional |
//! | `x{2}`, `x{1,3}`, `x{2,}` | counted repetition |
//! | `ab`, `a\|b` | concatenation and alternation |
//! | `(ab)+` | grouping |
//! | `^`, `$` | anchors |
//!
//! [`Regex::is_match`] performs *unanchored* (substring) search;
//! [`Regex::matches_full`] requires the whole input to match — the
//! directory lookup uses full matching, mirroring how service names are
//! matched in the paper's implementation.
//!
//! ```
//! use tamp_regexlite::Regex;
//!
//! let re = Regex::new("doc-(server|cache)[0-9]+").unwrap();
//! assert!(re.matches_full("doc-server12"));
//! assert!(!re.matches_full("doc-proxy1"));
//! assert!(re.is_match("prod doc-cache7 node"));
//! ```

mod nfa;
mod parser;

pub use parser::ParseError;

use nfa::Program;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
}

impl Regex {
    /// Compile a pattern. Returns a [`ParseError`] describing the first
    /// syntax problem found.
    pub fn new(pattern: &str) -> Result<Self, ParseError> {
        let ast = parser::parse(pattern)?;
        let program = Program::compile(&ast);
        Ok(Regex {
            pattern: pattern.to_string(),
            program,
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// True if the pattern matches anywhere in `input` (unanchored unless
    /// the pattern itself is anchored).
    pub fn is_match(&self, input: &str) -> bool {
        self.program.search(input, false)
    }

    /// True if the pattern matches the *entire* input.
    pub fn matches_full(&self, input: &str) -> bool {
        self.program.search(input, true)
    }
}

/// Convenience: treat `pattern` as a full-string regex but fall back to
/// literal equality when it fails to compile. This mirrors the forgiving
/// behaviour of the paper's C API, where an invalid pattern simply never
/// matches anything except itself.
pub fn match_or_literal(pattern: &str, input: &str) -> bool {
    match Regex::new(pattern) {
        Ok(re) => re.matches_full(input),
        Err(_) => pattern == input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(pat: &str, s: &str) -> bool {
        Regex::new(pat).unwrap().matches_full(s)
    }

    fn find(pat: &str, s: &str) -> bool {
        Regex::new(pat).unwrap().is_match(s)
    }

    #[test]
    fn literal_match() {
        assert!(full("abc", "abc"));
        assert!(!full("abc", "abd"));
        assert!(!full("abc", "abcd"));
        assert!(!full("abc", "ab"));
    }

    #[test]
    fn dot_matches_any_single() {
        assert!(full("a.c", "abc"));
        assert!(full("a.c", "axc"));
        assert!(!full("a.c", "ac"));
        assert!(!full("a.c", "abbc"));
    }

    #[test]
    fn star_plus_question() {
        assert!(full("ab*c", "ac"));
        assert!(full("ab*c", "abbbc"));
        assert!(!full("ab+c", "ac"));
        assert!(full("ab+c", "abc"));
        assert!(full("ab?c", "ac"));
        assert!(full("ab?c", "abc"));
        assert!(!full("ab?c", "abbc"));
    }

    #[test]
    fn counted_repetition() {
        assert!(full("a{3}", "aaa"));
        assert!(!full("a{3}", "aa"));
        assert!(!full("a{3}", "aaaa"));
        assert!(full("a{2,4}", "aa"));
        assert!(full("a{2,4}", "aaaa"));
        assert!(!full("a{2,4}", "aaaaa"));
        assert!(full("a{2,}", "aaaaaaa"));
        assert!(!full("a{2,}", "a"));
    }

    #[test]
    fn character_classes() {
        assert!(full("[abc]+", "cab"));
        assert!(!full("[abc]+", "cad"));
        assert!(full("[a-z0-9]+", "node42"));
        assert!(full("[^0-9]+", "nodename"));
        assert!(!full("[^0-9]+", "node42"));
        // '-' first or last is a literal dash.
        assert!(full("[-a]+", "a-a"));
        assert!(full("[a-]+", "-aa"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(full("cat|dog", "cat"));
        assert!(full("cat|dog", "dog"));
        assert!(!full("cat|dog", "cow"));
        assert!(full("(ab)+", "ababab"));
        assert!(!full("(ab)+", "aba"));
        assert!(full("a(b|c)d", "abd"));
        assert!(full("a(b|c)d", "acd"));
    }

    #[test]
    fn empty_pattern_matches_empty() {
        assert!(full("", ""));
        assert!(!full("", "a"));
        assert!(find("", "anything"));
    }

    #[test]
    fn anchors() {
        let re = Regex::new("^abc").unwrap();
        assert!(re.is_match("abcdef"));
        assert!(!re.is_match("xabc"));
        let re = Regex::new("abc$").unwrap();
        assert!(re.is_match("xxabc"));
        assert!(!re.is_match("abcx"));
        let re = Regex::new("^abc$").unwrap();
        assert!(re.is_match("abc"));
        assert!(!re.is_match("abcd"));
    }

    #[test]
    fn unanchored_search_finds_substring() {
        assert!(find("b+", "aaabbbccc"));
        assert!(!find("d+", "aaabbbccc"));
        assert!(find("a.c", "zzabczz"));
    }

    #[test]
    fn escapes() {
        assert!(full(r"a\.c", "a.c"));
        assert!(!full(r"a\.c", "abc"));
        assert!(full(r"\*\+\?", "*+?"));
        assert!(full(r"a\\b", r"a\b"));
        assert!(full(r"\[x\]", "[x]"));
    }

    #[test]
    fn unicode_input() {
        assert!(full("héllo", "héllo"));
        assert!(full("h.llo", "héllo"));
        assert!(full(".*", "日本語テキスト"));
        assert!(full(".{7}", "日本語テキスト"));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("a(bc").is_err());
        assert!(Regex::new("a)b").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a{").is_err());
        assert!(Regex::new("a{3,2}").is_err());
        assert!(Regex::new("a\\").is_err());
    }

    #[test]
    fn pathological_patterns_run_fast() {
        // The classic backtracking killer: (a+)+ against a^n b.
        // Thompson simulation handles this in linear time.
        let re = Regex::new("(a+)+$").unwrap();
        let input = format!("{}b", "a".repeat(2000));
        let start = std::time::Instant::now();
        assert!(!re.matches_full(&input));
        assert!(start.elapsed().as_millis() < 2000, "regex not linear-time");
    }

    #[test]
    fn service_name_patterns_from_paper() {
        // The kinds of lookups the Neptune consumer performs.
        assert!(full("index.*", "index-server"));
        assert!(full("(doc|index)-server", "doc-server"));
        assert!(match_or_literal("retriever", "retriever"));
        assert!(!match_or_literal("retriev(", "retriever"));
        assert!(match_or_literal("retriev(", "retriev("));
    }

    #[test]
    fn pattern_accessor() {
        assert_eq!(Regex::new("a+b").unwrap().pattern(), "a+b");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Compiling + matching arbitrary patterns must never panic.
        #[test]
        fn never_panics(pat in "\\PC{0,24}", input in "\\PC{0,48}") {
            if let Ok(re) = Regex::new(&pat) {
                let _ = re.is_match(&input);
                let _ = re.matches_full(&input);
            }
        }

        /// A literal (escaped) pattern matches exactly itself.
        #[test]
        fn escaped_literal_matches_self(s in "[a-zA-Z0-9 .*+?()\\[\\]|^$\\\\{}-]{0,16}") {
            let escaped: String = s.chars().flat_map(|c| {
                if "\\.*+?()[]|^${}".contains(c) {
                    vec!['\\', c]
                } else {
                    vec![c]
                }
            }).collect();
            let re = Regex::new(&escaped).unwrap();
            prop_assert!(re.matches_full(&s));
        }

        /// Full match implies substring match.
        #[test]
        fn full_implies_search(pat in "[a-c.*+?|()]{1,10}", input in "[a-c]{0,12}") {
            if let Ok(re) = Regex::new(&pat) {
                if re.matches_full(&input) {
                    prop_assert!(re.is_match(&input));
                }
            }
        }

        /// `x` matching implies `x*` and `x+` also match (full, repeated).
        #[test]
        fn star_superset(input in "[ab]{1,8}") {
            let re_plus = Regex::new("(a|b)+").unwrap();
            let re_star = Regex::new("(a|b)*").unwrap();
            prop_assert!(re_plus.matches_full(&input));
            prop_assert!(re_star.matches_full(&input));
            prop_assert!(re_star.matches_full(""));
            prop_assert!(!re_plus.matches_full(""));
        }
    }
}

#[cfg(test)]
mod shorthand_tests {
    use super::*;

    fn full(pat: &str, s: &str) -> bool {
        Regex::new(pat).unwrap().matches_full(s)
    }

    #[test]
    fn digit_class() {
        assert!(full(r"\d+", "12345"));
        assert!(!full(r"\d+", "12a45"));
        assert!(full(r"part-\d", "part-7"));
        assert!(full(r"\D+", "abc-"));
        assert!(!full(r"\D+", "ab3"));
    }

    #[test]
    fn word_class() {
        assert!(full(r"\w+", "node_42"));
        assert!(!full(r"\w+", "node 42"));
        assert!(full(r"\W", "-"));
        assert!(!full(r"\W", "x"));
    }

    #[test]
    fn space_class() {
        assert!(full(r"a\sb", "a b"));
        assert!(full(r"a\s+b", "a \t b"));
        assert!(!full(r"a\sb", "axb"));
        assert!(full(r"\S+", "no-spaces"));
    }

    #[test]
    fn shorthand_composes_with_repeats_and_groups() {
        assert!(full(r"(\w+-\d+,?)+", "idx-1,doc-23,web-456"));
        assert!(full(r"svc\d{2}", "svc42"));
        assert!(!full(r"svc\d{2}", "svc4"));
    }
}

#[cfg(test)]
mod class_shorthand_tests {
    use super::Regex;

    #[test]
    fn shorthand_inside_classes() {
        let re = Regex::new(r"[\d-]+").unwrap();
        assert!(re.matches_full("1-3"));
        assert!(!re.matches_full("1-3,7"), "comma is not in [\\d-]");
        assert!(!re.matches_full("a-b"));
        let re = Regex::new(r"[\w.]+").unwrap();
        assert!(re.matches_full("doc.server_1"));
        assert!(!re.matches_full("doc server"));
    }

    #[test]
    fn negated_shorthand_rejected_in_class() {
        assert!(Regex::new(r"[\D]").is_err());
        assert!(Regex::new(r"[\W\s]").is_err());
    }
}
