//! Recursive-descent parser from pattern text to an [`Ast`].

/// Parsed regular-expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Literal(char),
    /// Any single character (`.`).
    AnyChar,
    /// Character class; `negated` inverts membership.
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    /// Concatenation of parts, in order.
    Concat(Vec<Ast>),
    /// Alternation between branches.
    Alternate(Vec<Ast>),
    /// Repetition of the inner expression: `min..=max` copies
    /// (`max == None` means unbounded).
    Repeat {
        inner: Box<Ast>,
        min: u32,
        max: Option<u32>,
    },
    /// `^` start-of-input anchor.
    StartAnchor,
    /// `$` end-of-input anchor.
    EndAnchor,
}

/// One member of a character class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ClassItem {
    Char(char),
    Range(char, char),
}

/// Expansion of a shorthand class escape (`\d`, `\w`, `\s`).
pub(crate) fn shorthand_items(c: char) -> Option<(bool, Vec<ClassItem>)> {
    let digit = vec![ClassItem::Range('0', '9')];
    let word = vec![
        ClassItem::Range('a', 'z'),
        ClassItem::Range('A', 'Z'),
        ClassItem::Range('0', '9'),
        ClassItem::Char('_'),
    ];
    let space = vec![
        ClassItem::Char(' '),
        ClassItem::Char('\t'),
        ClassItem::Char('\n'),
        ClassItem::Char('\r'),
    ];
    match c {
        'd' => Some((false, digit)),
        'D' => Some((true, digit)),
        'w' => Some((false, word)),
        'W' => Some((true, word)),
        's' => Some((false, space)),
        'S' => Some((true, space)),
        _ => None,
    }
}

/// Pattern syntax error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the pattern where the problem was noticed.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Upper bound on counted repetition (`a{n}`), to keep compiled program
/// sizes sane.
const MAX_COUNTED_REPEAT: u32 = 256;

pub(crate) fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
    };
    let ast = p.alternation()?;
    if p.pos != p.chars.len() {
        return Err(p.error("unexpected character (unbalanced ')'?)"));
    }
    Ok(ast)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// alternation := concat ('|' concat)*
    fn alternation(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alternate(branches)
        })
    }

    /// concat := repeat*
    fn concat(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().unwrap(),
            _ => Ast::Concat(parts),
        })
    }

    /// repeat := atom ('*' | '+' | '?' | '{' counts '}')?
    fn repeat(&mut self) -> Result<Ast, ParseError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                self.bump();
                self.counts()?
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::StartAnchor | Ast::EndAnchor) {
            return Err(self.error("cannot repeat an anchor"));
        }
        Ok(Ast::Repeat {
            inner: Box::new(atom),
            min,
            max,
        })
    }

    /// counts := int (',' int?)? '}'
    fn counts(&mut self) -> Result<(u32, Option<u32>), ParseError> {
        let min = self.integer()?;
        let max = if self.eat(',') {
            if self.peek() == Some('}') {
                None
            } else {
                Some(self.integer()?)
            }
        } else {
            Some(min)
        };
        if !self.eat('}') {
            return Err(self.error("expected '}' to close repetition"));
        }
        if let Some(m) = max {
            if m < min {
                return Err(self.error("repetition max below min"));
            }
        }
        if min > MAX_COUNTED_REPEAT || max.is_some_and(|m| m > MAX_COUNTED_REPEAT) {
            return Err(self.error("counted repetition too large"));
        }
        Ok((min, max))
    }

    fn integer(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.error("expected a number"));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse()
            .map_err(|_| self.error("repetition count out of range"))
    }

    /// atom := '(' alternation ')' | class | '.' | '^' | '$' | escaped | literal
    fn atom(&mut self) -> Result<Ast, ParseError> {
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.alternation()?;
                if !self.eat(')') {
                    return Err(self.error("expected ')'"));
                }
                Ok(inner)
            }
            Some('[') => {
                self.bump();
                self.class()
            }
            Some('.') => {
                self.bump();
                Ok(Ast::AnyChar)
            }
            Some('^') => {
                self.bump();
                Ok(Ast::StartAnchor)
            }
            Some('$') => {
                self.bump();
                Ok(Ast::EndAnchor)
            }
            Some('\\') => {
                self.bump();
                match self.bump() {
                    Some(c) => {
                        if let Some((negated, items)) = shorthand_items(c) {
                            Ok(Ast::Class { negated, items })
                        } else {
                            Ok(Ast::Literal(unescape(c)))
                        }
                    }
                    None => Err(self.error("dangling escape at end of pattern")),
                }
            }
            Some(c @ ('*' | '+' | '?')) => Err(self.error(&format!("'{c}' has nothing to repeat"))),
            Some('{') => {
                // A '{' that does not follow an atom is taken literally,
                // matching common regex-engine leniency... but a dangling
                // '{' with digits is more likely a typo; be strict.
                Err(self.error("'{' has nothing to repeat"))
            }
            Some(c) => {
                self.bump();
                Ok(Ast::Literal(c))
            }
            None => Ok(Ast::Empty),
        }
    }

    /// class := '^'? item+ ']'
    fn class(&mut self) -> Result<Ast, ParseError> {
        let negated = self.eat('^');
        let mut items = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated character class")),
                Some(']') if !items.is_empty() => {
                    self.bump();
                    break;
                }
                _ => {
                    let lo = match self.bump().unwrap() {
                        '\\' => match self.bump() {
                            Some(c) => {
                                // Shorthand classes expand in place
                                // ([\d-] etc.); negated shorthands are
                                // not representable inside a class.
                                if let Some((negated, mut sub)) = shorthand_items(c) {
                                    if negated {
                                        return Err(self.error(
                                            "negated shorthand (\\D \\W \\S) not allowed inside a class",
                                        ));
                                    }
                                    items.append(&mut sub);
                                    continue;
                                }
                                unescape(c)
                            }
                            None => return Err(self.error("dangling escape in class")),
                        },
                        c => c,
                    };
                    // Range if '-' follows and is not class-final.
                    if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                        if self.chars.get(self.pos + 1).is_none() {
                            return Err(self.error("unterminated character class"));
                        }
                        self.bump(); // '-'
                        let hi = match self.bump().unwrap() {
                            '\\' => match self.bump() {
                                Some(c) => unescape(c),
                                None => return Err(self.error("dangling escape in class")),
                            },
                            c => c,
                        };
                        if hi < lo {
                            return Err(self.error("inverted range in character class"));
                        }
                        items.push(ClassItem::Range(lo, hi));
                    } else {
                        items.push(ClassItem::Char(lo));
                    }
                }
            }
        }
        Ok(Ast::Class { negated, items })
    }
}

/// Interpret a backslash escape. Unknown escapes are the literal char, so
/// `\.` is `.` and `\n` is a newline.
fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literal_run_as_concat() {
        let ast = parse("abc").unwrap();
        assert_eq!(
            ast,
            Ast::Concat(vec![
                Ast::Literal('a'),
                Ast::Literal('b'),
                Ast::Literal('c')
            ])
        );
    }

    #[test]
    fn precedence_alternation_lowest() {
        // "ab|c" is (ab)|(c), not a(b|c).
        let ast = parse("ab|c").unwrap();
        match ast {
            Ast::Alternate(branches) => {
                assert_eq!(branches.len(), 2);
                assert_eq!(
                    branches[0],
                    Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('b')])
                );
            }
            other => panic!("expected alternation, got {other:?}"),
        }
    }

    #[test]
    fn repeat_binds_tightest() {
        // "ab*" repeats only 'b'.
        let ast = parse("ab*").unwrap();
        match ast {
            Ast::Concat(parts) => {
                assert_eq!(parts[0], Ast::Literal('a'));
                assert!(matches!(parts[1], Ast::Repeat { .. }));
            }
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn counted_forms() {
        assert!(matches!(
            parse("a{3}").unwrap(),
            Ast::Repeat {
                min: 3,
                max: Some(3),
                ..
            }
        ));
        assert!(matches!(
            parse("a{2,5}").unwrap(),
            Ast::Repeat {
                min: 2,
                max: Some(5),
                ..
            }
        ));
        assert!(matches!(
            parse("a{2,}").unwrap(),
            Ast::Repeat {
                min: 2,
                max: None,
                ..
            }
        ));
    }

    #[test]
    fn class_with_ranges() {
        let ast = parse("[a-c9]").unwrap();
        assert_eq!(
            ast,
            Ast::Class {
                negated: false,
                items: vec![ClassItem::Range('a', 'c'), ClassItem::Char('9')]
            }
        );
    }

    #[test]
    fn class_trailing_dash_is_literal() {
        let ast = parse("[a-]").unwrap();
        assert_eq!(
            ast,
            Ast::Class {
                negated: false,
                items: vec![ClassItem::Char('a'), ClassItem::Char('-')]
            }
        );
    }

    #[test]
    fn error_positions_reported() {
        let err = parse("ab[cd").unwrap_err();
        assert!(err.position >= 2);
        assert!(err.message.contains("unterminated"));
        let err = parse("a{2,1}").unwrap_err();
        assert!(err.message.contains("below min"));
    }

    #[test]
    fn rejects_repeat_of_anchor() {
        assert!(parse("^*").is_err());
        assert!(parse("$+").is_err());
    }

    #[test]
    fn rejects_oversized_counted_repeat() {
        assert!(parse("a{257}").is_err());
        assert!(parse("a{1,1000}").is_err());
        assert!(parse("a{256}").is_ok());
    }
}
