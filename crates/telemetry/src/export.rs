//! Exporters: canonical JSONL event traces and CSV / summary-table
//! metric dumps.
//!
//! Every format here is **byte-deterministic**: iteration is over
//! sorted maps or the ordered event log, every number is an integer,
//! and JSON is hand-rolled with a fixed field order (no external
//! serializer, no HashMap iteration). Same seed → same bytes, so the
//! exports double as regression oracles in tests and CI.

use crate::events::{Event, EventRecord, ProtocolEvent};
use crate::metrics::{MetricValue, MetricsSnapshot, CLUSTER};

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_u16(v: Option<u16>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

/// Serialize one event record as a single JSON line. Field order is
/// fixed: `t`, `type`, then event-specific fields in declaration order.
pub fn event_to_json(r: &EventRecord) -> String {
    let t = r.time;
    match &r.event {
        Event::Send {
            src,
            multicast,
            kind,
            bytes,
            receivers,
        } => {
            let (ch, ttl) = match multicast {
                Some((c, l)) => (Some(*c), Some(*l)),
                None => (None, None),
            };
            format!(
                "{{\"t\":{t},\"type\":\"send\",\"src\":{},\"channel\":{},\"ttl\":{},\"kind\":\"{}\",\"bytes\":{bytes},\"receivers\":{receivers}}}",
                src.0,
                opt_u16(ch),
                match ttl {
                    Some(l) => l.to_string(),
                    None => "null".to_string(),
                },
                json_escape(kind),
            )
        }
        Event::Deliver {
            src,
            dst,
            channel,
            kind,
            bytes,
        } => format!(
            "{{\"t\":{t},\"type\":\"deliver\",\"src\":{},\"dst\":{},\"channel\":{},\"kind\":\"{}\",\"bytes\":{bytes}}}",
            src.0,
            dst.0,
            opt_u16(*channel),
            json_escape(kind),
        ),
        Event::Drop {
            src,
            dst,
            channel,
            kind,
            reason,
        } => format!(
            "{{\"t\":{t},\"type\":\"drop\",\"src\":{},\"dst\":{},\"channel\":{},\"kind\":\"{}\",\"reason\":\"{reason:?}\"}}",
            src.0,
            dst.0,
            opt_u16(*channel),
            json_escape(kind),
        ),
        Event::Timer { host, token } => format!(
            "{{\"t\":{t},\"type\":\"timer\",\"host\":{},\"token\":{token}}}",
            host.0
        ),
        Event::Fault(what, host) => format!(
            "{{\"t\":{t},\"type\":\"fault\",\"what\":\"{}\",\"host\":{}}}",
            json_escape(what),
            host.0
        ),
        Event::Net(what, detail) => format!(
            "{{\"t\":{t},\"type\":\"net\",\"what\":\"{}\",\"detail\":\"{}\"}}",
            json_escape(what),
            json_escape(detail)
        ),
        Event::Protocol { node, event } => {
            let fields = match event {
                ProtocolEvent::HeartbeatSent { level } => format!("\"level\":{level}"),
                ProtocolEvent::UpdateRelayed { level, events } => {
                    format!("\"level\":{level},\"events\":{events}")
                }
                ProtocolEvent::SuspicionArmed { subject }
                | ProtocolEvent::SuspicionRefuted { subject }
                | ProtocolEvent::SuspicionConfirmed { subject } => {
                    format!("\"subject\":{subject}")
                }
                ProtocolEvent::ElectionRound { level }
                | ProtocolEvent::LeadershipClaimed { level } => format!("\"level\":{level}"),
                ProtocolEvent::ProxySummary { services, dc } => {
                    format!("\"services\":{services},\"dc\":{dc}")
                }
                ProtocolEvent::ProxyForwarded {
                    origin,
                    hop_latency_us,
                } => format!("\"origin\":{origin},\"hop_latency_us\":{hop_latency_us}"),
                ProtocolEvent::SyncPoll { peer } => format!("\"peer\":{peer}"),
                ProtocolEvent::RequestIssued { partition } => {
                    format!("\"partition\":{partition}")
                }
                ProtocolEvent::RequestCompleted {
                    partition,
                    latency_us,
                } => format!("\"partition\":{partition},\"latency_us\":{latency_us}"),
                ProtocolEvent::RequestFailed { partition, reason } => {
                    format!("\"partition\":{partition},\"reason\":\"{reason}\"")
                }
            };
            format!(
                "{{\"t\":{t},\"type\":\"{}\",\"node\":{},{fields}}}",
                event.name(),
                node.0
            )
        }
    }
}

/// Serialize a slice of records as JSONL (one JSON object per line,
/// trailing newline when non-empty).
pub fn events_to_jsonl(records: &[EventRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&event_to_json(r));
        out.push('\n');
    }
    out
}

/// Canonical CSV header for [`snapshot_to_csv`].
pub const CSV_HEADER: &str = "subsystem,name,node,kind,value,count,sum,p50,p90,p99,max";

fn csv_node(node: u32) -> String {
    if node == CLUSTER {
        "cluster".to_string()
    } else {
        node.to_string()
    }
}

/// Serialize a metrics snapshot as CSV. Rows are sorted by
/// `(subsystem, name, node)`; counters and gauges fill `value`,
/// histograms fill `count,sum,p50,p90,p99,max`.
pub fn snapshot_to_csv(snap: &MetricsSnapshot) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for (k, v) in &snap.entries {
        let node = csv_node(k.node);
        match v {
            MetricValue::Counter(c) => {
                out.push_str(&format!(
                    "{},{},{node},counter,{c},,,,,,\n",
                    k.subsystem, k.name
                ));
            }
            MetricValue::Gauge(g) => {
                out.push_str(&format!(
                    "{},{},{node},gauge,{g},,,,,,\n",
                    k.subsystem, k.name
                ));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "{},{},{node},histogram,,{},{},{},{},{},{}\n",
                    k.subsystem,
                    k.name,
                    h.count,
                    h.sum,
                    h.quantile(0.5),
                    h.quantile(0.9),
                    h.quantile(0.99),
                    h.max(),
                ));
            }
        }
    }
    out
}

/// Render a metrics snapshot as an aligned plain-text table (for
/// terminal dashboards). Deterministic like every other exporter.
pub fn summary_table(snap: &MetricsSnapshot) -> String {
    let mut rows: Vec<[String; 4]> = vec![[
        "metric".to_string(),
        "node".to_string(),
        "kind".to_string(),
        "value".to_string(),
    ]];
    for (k, v) in &snap.entries {
        let value = match v {
            MetricValue::Counter(c) => c.to_string(),
            MetricValue::Gauge(g) => g.to_string(),
            MetricValue::Histogram(h) => format!(
                "n={} p50={} p99={} max={}",
                h.count,
                h.quantile(0.5),
                h.quantile(0.99),
                h.max()
            ),
        };
        rows.push([
            format!("{}/{}", k.subsystem, k.name),
            csv_node(k.node),
            v.kind().to_string(),
            value,
        ]);
    }
    let mut widths = [0usize; 4];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let line = format!(
            "{:<w0$}  {:>w1$}  {:<w2$}  {}",
            row[0],
            row[1],
            row[2],
            row[3],
            w0 = widths[0],
            w1 = widths[1],
            w2 = widths[2],
        );
        out.push_str(line.trim_end());
        out.push('\n');
        if i == 0 {
            let dash = widths.iter().sum::<usize>()
                + 6
                + rows[1..]
                    .iter()
                    .map(|r| r[3].len())
                    .max()
                    .unwrap_or(0)
                    .saturating_sub(widths[3]);
            out.push_str(&"-".repeat(dash.max(widths.iter().sum::<usize>() + 6)));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use tamp_topology::HostId;

    #[test]
    fn jsonl_is_stable_and_escaped() {
        let records = vec![
            EventRecord {
                time: 5,
                event: Event::Send {
                    src: HostId(1),
                    multicast: Some((2, 3)),
                    kind: "update",
                    bytes: 100,
                    receivers: 4,
                },
            },
            EventRecord {
                time: 6,
                event: Event::Net("partition", "a\"b".to_string()),
            },
            EventRecord {
                time: 7,
                event: Event::Protocol {
                    node: HostId(9),
                    event: ProtocolEvent::SuspicionArmed { subject: 4 },
                },
            },
        ];
        let jsonl = events_to_jsonl(&records);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"t\":5,\"type\":\"send\",\"src\":1,\"channel\":2,\"ttl\":3,\"kind\":\"update\",\"bytes\":100,\"receivers\":4}"
        );
        assert!(lines[1].contains("a\\\"b"));
        assert_eq!(
            lines[2],
            "{\"t\":7,\"type\":\"suspicion-armed\",\"node\":9,\"subject\":4}"
        );
        // Unicast deliver serializes channel as null.
        let uni = events_to_jsonl(&[EventRecord {
            time: 1,
            event: Event::Deliver {
                src: HostId(0),
                dst: HostId(1),
                channel: None,
                kind: "digest",
                bytes: 8,
            },
        }]);
        assert!(uni.contains("\"channel\":null"));
    }

    #[test]
    fn request_events_serialize() {
        let jsonl = events_to_jsonl(&[
            EventRecord {
                time: 1,
                event: Event::Protocol {
                    node: HostId(3),
                    event: ProtocolEvent::RequestIssued { partition: 7 },
                },
            },
            EventRecord {
                time: 2,
                event: Event::Protocol {
                    node: HostId(3),
                    event: ProtocolEvent::RequestCompleted {
                        partition: 7,
                        latency_us: 1850,
                    },
                },
            },
            EventRecord {
                time: 3,
                event: Event::Protocol {
                    node: HostId(3),
                    event: ProtocolEvent::RequestFailed {
                        partition: 7,
                        reason: "retry-exhausted",
                    },
                },
            },
        ]);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            "{\"t\":1,\"type\":\"request-issued\",\"node\":3,\"partition\":7}"
        );
        assert_eq!(
            lines[1],
            "{\"t\":2,\"type\":\"request-completed\",\"node\":3,\"partition\":7,\"latency_us\":1850}"
        );
        assert_eq!(
            lines[2],
            "{\"t\":3,\"type\":\"request-failed\",\"node\":3,\"partition\":7,\"reason\":\"retry-exhausted\"}"
        );
    }

    #[test]
    fn csv_has_canonical_header_and_sorted_rows() {
        let reg = Registry::new();
        reg.counter(2, "net", "sent").add(7);
        reg.counter(1, "net", "sent").add(3);
        reg.histogram(1, "net", "latency").record(100);
        let csv = snapshot_to_csv(&reg.snapshot());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines[1], "net,latency,1,histogram,,1,100,127,127,127,127");
        assert_eq!(lines[2], "net,sent,1,counter,3,,,,,,");
        assert_eq!(lines[3], "net,sent,2,counter,7,,,,,,");
    }

    #[test]
    fn summary_table_is_deterministic() {
        let reg = Registry::new();
        reg.counter(0, "m", "updates").add(12);
        reg.gauge(0, "m", "live").set(5);
        let a = summary_table(&reg.snapshot());
        let b = summary_table(&reg.snapshot());
        assert_eq!(a, b);
        assert!(a.contains("m/updates"));
        assert!(a.contains("12"));
    }
}
