//! The structured event-trace layer: one typed schema for network
//! events (send/deliver/drop/fault) *and* protocol events (heartbeat
//! sent, update relayed, suspicion armed/refuted, election round, proxy
//! summary, sync poll), held in a bounded ring buffer.
//!
//! This is the single event schema for the whole stack: the simulator
//! (`tamp-netsim`) records network events here, actors emit
//! [`ProtocolEvent`]s through their effect queue, and the chaos runner
//! and `tamp-exp trace` both consume [`EventRecord`]s instead of
//! pre-rendered strings. Timestamps are supplied by the driver
//! (virtual ns in the simulator, wall-clock ns in the UDP runtime) —
//! this crate never reads a clock.

use tamp_topology::HostId;

/// Event timestamp in nanoseconds (virtual or wall-clock, driver's
/// choice). Numerically identical to `tamp_netsim::SimTime`.
pub type EventTime = u64;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A packet left a host.
    Send {
        src: HostId,
        /// `None` for unicast, `Some((channel, ttl))` for multicast.
        multicast: Option<(u16, u8)>,
        kind: &'static str,
        bytes: u32,
        receivers: u32,
    },
    /// A packet arrived at a host.
    Deliver {
        src: HostId,
        dst: HostId,
        /// Multicast channel the packet travelled on (`None` = unicast).
        channel: Option<u16>,
        kind: &'static str,
        bytes: u32,
    },
    /// A delivery was dropped (loss, dead host, partition).
    Drop {
        src: HostId,
        dst: HostId,
        /// Multicast channel the packet travelled on (`None` = unicast).
        channel: Option<u16>,
        kind: &'static str,
        reason: DropReason,
    },
    /// A timer fired on a host.
    Timer { host: HostId, token: u64 },
    /// Fault injection.
    Fault(&'static str, HostId),
    /// Network-wide fault transition (partition, heal, loss change):
    /// a short verb plus a preformatted detail string.
    Net(&'static str, String),
    /// A protocol-level event emitted by the actor running on `node`.
    Protocol { node: HostId, event: ProtocolEvent },
}

/// A typed protocol-level event. Emitted by actors via
/// `Context::emit`; node ids are raw `u32`s (`NodeId.0`) so this crate
/// stays independent of the wire crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// A periodic heartbeat went out on hierarchy level `level`.
    HeartbeatSent { level: u8 },
    /// Piggybacked membership updates were relayed up/down a level.
    UpdateRelayed { level: u8, events: u32 },
    /// A suspicion timer was armed against `subject`.
    SuspicionArmed { subject: u32 },
    /// A suspicion of `subject` was refuted by proof of life.
    SuspicionRefuted { subject: u32 },
    /// A suspicion of `subject` matured into a death declaration.
    SuspicionConfirmed { subject: u32 },
    /// An election round started on hierarchy level `level`.
    ElectionRound { level: u8 },
    /// This node claimed leadership of hierarchy level `level`.
    LeadershipClaimed { level: u8 },
    /// A proxy pushed a service summary (`services` entries) to remote
    /// data centre `dc`.
    ProxySummary { services: u32, dc: u16 },
    /// A proxy unwound a forwarded request's response. `origin` is the
    /// node that issued the original request (the high half of the
    /// request id, which rides the whole forwarding chain unchanged), so
    /// proxy-path latency can be attributed back to its source.
    ProxyForwarded { origin: u32, hop_latency_us: u32 },
    /// An anti-entropy sync poll was sent to `peer`.
    SyncPoll { peer: u32 },
    /// A synthetic user request entered the system, targeting
    /// `partition` of the workload's document service (`tamp-load`).
    RequestIssued { partition: u16 },
    /// A request completed end-to-end in `latency_us` microseconds.
    RequestCompleted { partition: u16, latency_us: u32 },
    /// A request failed; `reason` is its error-taxonomy class
    /// (`routed-to-dead`, `timeout`, `retry-exhausted`).
    RequestFailed {
        partition: u16,
        reason: &'static str,
    },
}

impl ProtocolEvent {
    /// Stable kind string, used by [`EventFilter::kinds`] and the JSONL
    /// exporter.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolEvent::HeartbeatSent { .. } => "heartbeat-sent",
            ProtocolEvent::UpdateRelayed { .. } => "update-relayed",
            ProtocolEvent::SuspicionArmed { .. } => "suspicion-armed",
            ProtocolEvent::SuspicionRefuted { .. } => "suspicion-refuted",
            ProtocolEvent::SuspicionConfirmed { .. } => "suspicion-confirmed",
            ProtocolEvent::ElectionRound { .. } => "election-round",
            ProtocolEvent::LeadershipClaimed { .. } => "leadership-claimed",
            ProtocolEvent::ProxySummary { .. } => "proxy-summary",
            ProtocolEvent::ProxyForwarded { .. } => "proxy-forwarded",
            ProtocolEvent::SyncPoll { .. } => "sync-poll",
            ProtocolEvent::RequestIssued { .. } => "request-issued",
            ProtocolEvent::RequestCompleted { .. } => "request-completed",
            ProtocolEvent::RequestFailed { .. } => "request-failed",
        }
    }
}

/// Why a delivery was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Random packet loss.
    Loss,
    /// The destination was dead (or restarted since the send).
    DeadHost,
    /// A network partition blocked the segment pair.
    Partition,
    /// A gray (asymmetric) partition blocked this direction only; the
    /// reverse direction still delivers. Kept distinct from
    /// [`DropReason::Partition`] so metrics reconciliation can attribute
    /// directional loss exactly.
    Gray,
    /// The destination became unreachable because a router on every
    /// path between the segments is down (dynamic topology).
    Unroutable,
}

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    pub time: EventTime,
    pub event: Event,
}

/// Event-log configuration and filtering.
#[derive(Debug, Clone)]
pub struct EventFilter {
    /// Master switch.
    pub enabled: bool,
    /// Keep only the most recent `capacity` records (ring buffer).
    pub capacity: usize,
    /// Record timer firings too (noisy; off by default).
    pub include_timers: bool,
    /// Only record events touching these hosts (empty = all hosts).
    pub hosts: Vec<HostId>,
    /// Only record these message / protocol-event kinds (empty = all).
    pub kinds: Vec<&'static str>,
}

impl Default for EventFilter {
    fn default() -> Self {
        EventFilter {
            enabled: false,
            capacity: 100_000,
            include_timers: false,
            hosts: Vec::new(),
            kinds: Vec::new(),
        }
    }
}

impl EventFilter {
    /// Convenience: tracing on, everything recorded.
    pub fn all() -> Self {
        EventFilter {
            enabled: true,
            ..Default::default()
        }
    }

    fn wants_host(&self, h: HostId) -> bool {
        self.hosts.is_empty() || self.hosts.contains(&h)
    }

    fn wants_kind(&self, k: &str) -> bool {
        self.kinds.is_empty() || self.kinds.contains(&k)
    }

    /// Would this filter record `ev`?
    pub fn wants(&self, ev: &Event) -> bool {
        if !self.enabled {
            return false;
        }
        match ev {
            Event::Send { src, kind, .. } => self.wants_host(*src) && self.wants_kind(kind),
            Event::Deliver { src, dst, kind, .. } => {
                (self.wants_host(*src) || self.wants_host(*dst)) && self.wants_kind(kind)
            }
            Event::Drop { src, dst, kind, .. } => {
                (self.wants_host(*src) || self.wants_host(*dst)) && self.wants_kind(kind)
            }
            Event::Timer { host, .. } => self.include_timers && self.wants_host(*host),
            Event::Fault(_, host) => self.wants_host(*host),
            // Network-wide transitions touch every host; never filtered.
            Event::Net(..) => true,
            Event::Protocol { node, event } => {
                self.wants_host(*node) && self.wants_kind(event.name())
            }
        }
    }
}

/// The bounded event log: a ring buffer that evicts the oldest record
/// when full, so the newest events always survive.
#[derive(Debug, Default)]
pub struct EventLog {
    records: std::collections::VecDeque<EventRecord>,
    capacity: usize,
    /// Total records ever pushed (including evicted ones).
    pushed: u64,
}

impl EventLog {
    pub fn new(capacity: usize) -> Self {
        EventLog {
            records: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            pushed: 0,
        }
    }

    pub fn push(&mut self, time: EventTime, event: Event) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(EventRecord { time, event });
        self.pushed += 1;
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &EventRecord> {
        self.records.iter()
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records observed, including any evicted by the ring buffer.
    pub fn total_recorded(&self) -> u64 {
        self.pushed
    }

    /// Render one record as a human-readable timeline line.
    pub fn render(r: &EventRecord) -> String {
        let t = r.time as f64 / 1e9;
        match &r.event {
            Event::Send {
                src,
                multicast,
                kind,
                bytes,
                receivers,
            } => match multicast {
                Some((ch, ttl)) => format!(
                    "{t:11.6}  {src:>5} ──▶ ch{ch}/ttl{ttl}  {kind} ({bytes} B, {receivers} rcvrs)"
                ),
                None => format!("{t:11.6}  {src:>5} ──▶ unicast  {kind} ({bytes} B)"),
            },
            Event::Deliver {
                src,
                dst,
                channel,
                kind,
                bytes,
            } => match channel {
                Some(ch) => {
                    format!("{t:11.6}  {src:>5} ─▷ {dst:<5} ch{ch} {kind} ({bytes} B)")
                }
                None => format!("{t:11.6}  {src:>5} ─▷ {dst:<5} {kind} ({bytes} B)"),
            },
            Event::Drop {
                src,
                dst,
                channel,
                kind,
                reason,
            } => match channel {
                Some(ch) => {
                    format!("{t:11.6}  {src:>5} ─✕ {dst:<5} ch{ch} {kind} ({reason:?})")
                }
                None => format!("{t:11.6}  {src:>5} ─✕ {dst:<5} {kind} ({reason:?})"),
            },
            Event::Timer { host, token } => {
                format!("{t:11.6}  {host:>5} ⏰ timer {token:#x}")
            }
            Event::Fault(what, host) => format!("{t:11.6}  ==== {what} {host} ===="),
            Event::Net(what, detail) => format!("{t:11.6}  ==== net {what} {detail} ===="),
            Event::Protocol { node, event } => {
                let detail = match event {
                    ProtocolEvent::HeartbeatSent { level } => format!("level {level}"),
                    ProtocolEvent::UpdateRelayed { level, events } => {
                        format!("level {level}, {events} events")
                    }
                    ProtocolEvent::SuspicionArmed { subject }
                    | ProtocolEvent::SuspicionRefuted { subject }
                    | ProtocolEvent::SuspicionConfirmed { subject } => format!("n{subject}"),
                    ProtocolEvent::ElectionRound { level }
                    | ProtocolEvent::LeadershipClaimed { level } => format!("level {level}"),
                    ProtocolEvent::ProxySummary { services, dc } => {
                        format!("{services} services → dc{dc}")
                    }
                    ProtocolEvent::SyncPoll { peer } => format!("peer n{peer}"),
                    ProtocolEvent::RequestIssued { partition } => format!("partition {partition}"),
                    ProtocolEvent::RequestCompleted {
                        partition,
                        latency_us,
                    } => format!("partition {partition}, {latency_us} us"),
                    ProtocolEvent::RequestFailed { partition, reason } => {
                        format!("partition {partition}, {reason}")
                    }
                    ProtocolEvent::ProxyForwarded {
                        origin,
                        hop_latency_us,
                    } => format!("origin n{origin}, {hop_latency_us} us"),
                };
                format!("{t:11.6}  {node:>5} ⋄ {} {detail}", event.name())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest_keeps_newest() {
        let mut log = EventLog::new(3);
        for i in 0..5u64 {
            log.push(
                i,
                Event::Timer {
                    host: HostId(0),
                    token: i,
                },
            );
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_recorded(), 5);
        let times: Vec<EventTime> = log.records().map(|r| r.time).collect();
        assert_eq!(times, vec![2, 3, 4], "newest events survive eviction");
    }

    #[test]
    fn filters_apply() {
        let cfg = EventFilter {
            enabled: true,
            hosts: vec![HostId(1)],
            kinds: vec!["heartbeat"],
            ..Default::default()
        };
        let ok = Event::Deliver {
            src: HostId(1),
            dst: HostId(2),
            channel: None,
            kind: "heartbeat",
            bytes: 10,
        };
        let wrong_kind = Event::Deliver {
            src: HostId(1),
            dst: HostId(2),
            channel: None,
            kind: "update",
            bytes: 10,
        };
        let wrong_host = Event::Deliver {
            src: HostId(3),
            dst: HostId(4),
            channel: None,
            kind: "heartbeat",
            bytes: 10,
        };
        assert!(cfg.wants(&ok));
        assert!(!cfg.wants(&wrong_kind));
        assert!(!cfg.wants(&wrong_host));
    }

    #[test]
    fn protocol_events_filter_by_name_and_node() {
        let cfg = EventFilter {
            enabled: true,
            hosts: vec![HostId(7)],
            kinds: vec!["suspicion-armed"],
            ..Default::default()
        };
        let ok = Event::Protocol {
            node: HostId(7),
            event: ProtocolEvent::SuspicionArmed { subject: 3 },
        };
        let wrong_kind = Event::Protocol {
            node: HostId(7),
            event: ProtocolEvent::SyncPoll { peer: 3 },
        };
        let wrong_node = Event::Protocol {
            node: HostId(8),
            event: ProtocolEvent::SuspicionArmed { subject: 3 },
        };
        assert!(cfg.wants(&ok));
        assert!(!cfg.wants(&wrong_kind));
        assert!(!cfg.wants(&wrong_node));
    }

    #[test]
    fn disabled_wants_nothing() {
        let cfg = EventFilter::default();
        assert!(!cfg.wants(&Event::Fault("kill", HostId(0))));
    }

    #[test]
    fn timers_gated_separately() {
        let mut cfg = EventFilter::all();
        let t = Event::Timer {
            host: HostId(0),
            token: 1,
        };
        assert!(!cfg.wants(&t), "timers are opt-in");
        cfg.include_timers = true;
        assert!(cfg.wants(&t));
    }

    #[test]
    fn render_includes_channel_ids() {
        let deliver = EventRecord {
            time: 1_500_000_000,
            event: Event::Deliver {
                src: HostId(1),
                dst: HostId(2),
                channel: Some(3),
                kind: "update",
                bytes: 64,
            },
        };
        let line = EventLog::render(&deliver);
        assert!(line.contains("1.500000"));
        assert!(
            line.contains("ch3"),
            "multicast channel id is rendered: {line}"
        );
        let drop = EventRecord {
            time: 2_000_000_000,
            event: Event::Drop {
                src: HostId(1),
                dst: HostId(2),
                channel: Some(9),
                kind: "update",
                reason: DropReason::Loss,
            },
        };
        let line = EventLog::render(&drop);
        assert!(line.contains("ch9") && line.contains("Loss"));
    }
}
