//! The metrics registry: counters, gauges, and fixed-bucket histograms
//! keyed by `(node, subsystem, name)`.
//!
//! Recording is lock-free after handle creation — a handle is an
//! `Arc<AtomicU64>` (or a bucket array of them), so the hot path is one
//! relaxed `fetch_add`. Handle creation takes a registry lock and is
//! meant for setup or cold paths. A *disabled* registry hands out no-op
//! handles so instrumented code pays only a branch when telemetry is
//! off (the run-time equivalent of compiling it out).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Pseudo-node id for cluster-wide (not per-host) series.
pub const CLUSTER: u32 = u32::MAX;

/// Identifies one instrument. Ordered `(subsystem, name, node)` so
/// exports group related series together deterministically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    pub subsystem: &'static str,
    pub name: String,
    pub node: u32,
}

impl Key {
    pub fn new(node: u32, subsystem: &'static str, name: impl Into<String>) -> Self {
        Key {
            subsystem,
            name: name.into(),
            node,
        }
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.node == CLUSTER {
            write!(f, "{}/{}", self.subsystem, self.name)
        } else {
            write!(f, "{}/{}[n{}]", self.subsystem, self.name, self.node)
        }
    }
}

/// Number of histogram buckets: bucket `i` holds values whose bit
/// length is `i` (powers of two), so the full `u64` range is covered
/// with constant memory and recording is a `leading_zeros`.
pub const HISTOGRAM_BUCKETS: usize = 65;

fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (used for percentile estimates).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A monotone counter handle. Cheap to clone; no-op when detached.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that records nothing (disabled registry).
    pub fn noop() -> Self {
        Counter(None)
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(a) = &self.0 {
            a.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |a| a.load(Ordering::Relaxed))
    }
}

/// A last-value gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    pub fn noop() -> Self {
        Gauge(None)
    }

    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(a) = &self.0 {
            a.store(v, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |a| a.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket (power-of-two) histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    pub fn noop() -> Self {
        Histogram(None)
    }

    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot::default(),
            Some(h) => HistogramSnapshot {
                buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
                count: h.count.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
            },
        }
    }
}

/// A point-in-time copy of a histogram. Merging is bucket-wise addition,
/// which is associative and commutative — per-node histograms can be
/// folded into cluster aggregates in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`). Deterministic: pure integer bucket walk.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// Upper bound of the highest non-empty bucket.
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, bucket_upper)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

/// One metric sample queued by a sans-io actor (see
/// `tamp_netsim::Effect`): the driver routes it into its registry under
/// the emitting host's node id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sample {
    Count {
        subsystem: &'static str,
        name: &'static str,
        n: u64,
    },
    SetGauge {
        subsystem: &'static str,
        name: &'static str,
        value: u64,
    },
    Record {
        subsystem: &'static str,
        name: &'static str,
        value: u64,
    },
}

#[derive(Debug, Default)]
struct Inner {
    slots: Mutex<BTreeMap<Key, Slot>>,
}

/// The shared metrics registry. Clones share storage. A registry is
/// either *enabled* (stores data) or *disabled* (hands out no-op
/// handles); drivers hold one either way so instrumentation sites never
/// need an `Option`.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// An enabled registry.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A registry that records nothing and allocates nothing.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Get-or-create the counter at `(node, subsystem, name)`.
    pub fn counter(&self, node: u32, subsystem: &'static str, name: impl Into<String>) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::noop();
        };
        let key = Key::new(node, subsystem, name);
        let mut slots = inner.slots.lock().unwrap();
        match slots
            .entry(key)
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))))
        {
            Slot::Counter(a) => Counter(Some(Arc::clone(a))),
            _ => Counter::noop(), // key already holds a different kind
        }
    }

    /// Get-or-create the gauge at `(node, subsystem, name)`.
    pub fn gauge(&self, node: u32, subsystem: &'static str, name: impl Into<String>) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::noop();
        };
        let key = Key::new(node, subsystem, name);
        let mut slots = inner.slots.lock().unwrap();
        match slots
            .entry(key)
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0))))
        {
            Slot::Gauge(a) => Gauge(Some(Arc::clone(a))),
            _ => Gauge::noop(),
        }
    }

    /// Get-or-create the histogram at `(node, subsystem, name)`.
    pub fn histogram(
        &self,
        node: u32,
        subsystem: &'static str,
        name: impl Into<String>,
    ) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::noop();
        };
        let key = Key::new(node, subsystem, name);
        let mut slots = inner.slots.lock().unwrap();
        match slots
            .entry(key)
            .or_insert_with(|| Slot::Histogram(Arc::new(HistogramCore::default())))
        {
            Slot::Histogram(h) => Histogram(Some(Arc::clone(h))),
            _ => Histogram::noop(),
        }
    }

    /// One-shot recording (cold path: takes the registry lock). Drivers
    /// that route high-rate samples should cache handles instead.
    pub fn apply(&self, node: u32, sample: Sample) {
        match sample {
            Sample::Count { subsystem, name, n } => self.counter(node, subsystem, name).add(n),
            Sample::SetGauge {
                subsystem,
                name,
                value,
            } => self.gauge(node, subsystem, name).set(value),
            Sample::Record {
                subsystem,
                name,
                value,
            } => self.histogram(node, subsystem, name).record(value),
        }
    }

    /// Deterministic point-in-time copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries = BTreeMap::new();
        if let Some(inner) = &self.inner {
            let slots = inner.slots.lock().unwrap();
            for (k, slot) in slots.iter() {
                let v = match slot {
                    Slot::Counter(a) => MetricValue::Counter(a.load(Ordering::Relaxed)),
                    Slot::Gauge(a) => MetricValue::Gauge(a.load(Ordering::Relaxed)),
                    Slot::Histogram(h) => {
                        MetricValue::Histogram(Box::new(Histogram(Some(Arc::clone(h))).snapshot()))
                    }
                };
                entries.insert(k.clone(), v);
            }
        }
        MetricsSnapshot { entries }
    }
}

/// One exported value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(u64),
    /// Boxed: a snapshot is ~540 bytes against the 8-byte scalars.
    Histogram(Box<HistogramSnapshot>),
}

impl MetricValue {
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// A deterministic copy of a [`Registry`], sorted by [`Key`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub entries: BTreeMap<Key, MetricValue>,
}

impl MetricsSnapshot {
    /// Counter value at an exact key (0 when absent).
    pub fn counter(&self, node: u32, subsystem: &str, name: &str) -> u64 {
        match self
            .entries
            .iter()
            .find(|(k, _)| k.node == node && k.subsystem == subsystem && k.name == name)
        {
            Some((_, MetricValue::Counter(v))) => *v,
            _ => 0,
        }
    }

    /// Histogram snapshot at an exact key, when present.
    pub fn histogram(&self, node: u32, subsystem: &str, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find_map(|(k, v)| match v {
            MetricValue::Histogram(h)
                if k.node == node && k.subsystem == subsystem && k.name == name =>
            {
                Some(&**h)
            }
            _ => None,
        })
    }

    /// Counters in `subsystem` whose name starts with `prefix`, as
    /// `(name-suffix, summed value)` pairs in name order — e.g. prefix
    /// `"sent_bytes."` yields per-message-kind byte totals.
    pub fn counters_with_prefix(&self, subsystem: &str, prefix: &str) -> Vec<(String, u64)> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for (k, v) in &self.entries {
            if k.subsystem == subsystem && k.name.starts_with(prefix) {
                if let MetricValue::Counter(c) = v {
                    *out.entry(k.name[prefix.len()..].to_string()).or_insert(0) += c;
                }
            }
        }
        out.into_iter().collect()
    }

    /// Sum of a counter over every node it was recorded for.
    pub fn counter_total(&self, subsystem: &str, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(k, _)| k.subsystem == subsystem && k.name == name)
            .map(|(_, v)| match v {
                MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// Fold per-node series into cluster-wide aggregates: counters and
    /// gauges sum, histograms merge bucket-wise. Keys keep their
    /// `(subsystem, name)` and get node = [`CLUSTER`].
    pub fn aggregate(&self) -> MetricsSnapshot {
        let mut out: BTreeMap<Key, MetricValue> = BTreeMap::new();
        for (k, v) in &self.entries {
            let key = Key::new(CLUSTER, k.subsystem, k.name.clone());
            match out.entry(key) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    match (e.get_mut(), v) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                        _ => {} // kind clash: keep the first
                    }
                }
            }
        }
        MetricsSnapshot { entries: out }
    }

    /// Fold another snapshot into this one, key by key: counters and
    /// gauges sum, histograms merge bucket-wise, and a key present in
    /// only one side is kept as-is. The combiner is associative and
    /// commutative, which is what lets parallel sweeps merge per-run
    /// snapshots in submission order and still equal the sequential
    /// fold (see `docs/PERFORMANCE.md`).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.entries {
            match self.entries.entry(k.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    match (e.get_mut(), v) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                        _ => {} // kind clash: keep the first
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [`MetricsSnapshot::merge`] must be order-insensitive: folding
    /// per-run snapshots in every permutation yields the identical
    /// aggregate. Parallel sweeps and the sharded engine's master-side
    /// merge both lean on this; a key must keep one metric kind across
    /// snapshots (the registry enforces that), since kind clashes
    /// resolve first-wins and would break commutativity.
    #[test]
    fn snapshot_merge_is_order_insensitive() {
        let parts: Vec<MetricsSnapshot> = (0..4u32)
            .map(|i| {
                let reg = Registry::new();
                // Disjoint per-node keys plus keys shared by every part,
                // across all three kinds.
                reg.counter(i, "net", "sent").add(10 + u64::from(i));
                reg.counter(9, "net", "sent").add(u64::from(i) + 1);
                reg.gauge(i, "net", "queue").set(u64::from(i));
                let h = reg.histogram(9, "load", "latency");
                for v in 0..(5 + u64::from(i)) {
                    h.record(v * 1_000 + u64::from(i));
                }
                reg.snapshot()
            })
            .collect();

        let fold = |order: &[usize]| {
            let mut acc = MetricsSnapshot::default();
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc
        };
        let reference = fold(&[0, 1, 2, 3]);
        assert_eq!(reference.counter_total("net", "sent"), 56);
        assert!(reference.histogram(9, "load", "latency").is_some());

        let mut perms = 0;
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    for d in 0..4 {
                        let p = [a, b, c, d];
                        let mut sorted = p;
                        sorted.sort_unstable();
                        if sorted != [0, 1, 2, 3] {
                            continue;
                        }
                        perms += 1;
                        assert_eq!(fold(&p), reference, "merge order {p:?} diverged");
                    }
                }
            }
        }
        assert_eq!(perms, 24);
    }

    #[test]
    fn counters_and_gauges_record() {
        let reg = Registry::new();
        let c = reg.counter(0, "net", "sent");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same key → same storage.
        assert_eq!(reg.counter(0, "net", "sent").get(), 5);
        let g = reg.gauge(1, "net", "queue");
        g.set(7);
        g.set(3);
        assert_eq!(reg.gauge(1, "net", "queue").get(), 3);
    }

    #[test]
    fn disabled_registry_is_noop() {
        let reg = Registry::disabled();
        let c = reg.counter(0, "net", "sent");
        c.add(10);
        assert_eq!(c.get(), 0);
        assert!(reg.snapshot().entries.is_empty());
        assert!(!reg.is_enabled());
    }

    #[test]
    fn histogram_quantiles_and_max() {
        let reg = Registry::new();
        let h = reg.histogram(0, "net", "latency");
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        // p50 falls in the bucket of value 3 (bit length 2 → upper 3).
        assert_eq!(s.quantile(0.5), 3);
        assert!(s.quantile(1.0) >= 1000);
        assert!(s.max() >= 1000 && s.max() < 2048);
        assert_eq!(s.mean(), 1106.0 / 5.0);
    }

    #[test]
    fn histogram_merge_is_associative() {
        fn h(values: &[u64]) -> HistogramSnapshot {
            let reg = Registry::new();
            let h = reg.histogram(0, "t", "x");
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        }
        let (a, b, c) = (h(&[1, 5, 9]), h(&[2, 1000]), h(&[7, 7, 7, 70]));
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.count, 9);
    }

    #[test]
    fn snapshot_merge_is_associative_and_commutative() {
        fn snap(node: u32, sent: u64, lat: &[u64]) -> MetricsSnapshot {
            let reg = Registry::new();
            reg.counter(node, "net", "sent").add(sent);
            reg.gauge(node, "net", "queue").set(sent);
            let h = reg.histogram(0, "net", "latency");
            for &v in lat {
                h.record(v);
            }
            reg.snapshot()
        }
        let (a, b, c) = (snap(0, 3, &[1, 9]), snap(1, 5, &[2]), snap(0, 7, &[70]));
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): sweeps may fold per-run
        // snapshots in any grouping.
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // a ⊕ b == b ⊕ a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Overlapping keys combined, disjoint keys kept.
        assert_eq!(left.counter(0, "net", "sent"), 10);
        assert_eq!(left.counter_total("net", "sent"), 15);
        assert_eq!(left.histogram(0, "net", "latency").unwrap().count, 4);
    }

    #[test]
    fn snapshot_is_sorted_and_aggregates() {
        let reg = Registry::new();
        reg.counter(3, "net", "sent").add(1);
        reg.counter(1, "net", "sent").add(2);
        reg.counter(2, "membership", "updates").add(5);
        let snap = reg.snapshot();
        let keys: Vec<String> = snap.entries.keys().map(|k| k.to_string()).collect();
        assert_eq!(
            keys,
            vec!["membership/updates[n2]", "net/sent[n1]", "net/sent[n3]"]
        );
        assert_eq!(snap.counter_total("net", "sent"), 3);
        let agg = snap.aggregate();
        assert_eq!(agg.counter(CLUSTER, "net", "sent"), 3);
    }

    #[test]
    fn apply_routes_sample_kinds() {
        let reg = Registry::new();
        reg.apply(
            4,
            Sample::Count {
                subsystem: "m",
                name: "c",
                n: 2,
            },
        );
        reg.apply(
            4,
            Sample::SetGauge {
                subsystem: "m",
                name: "g",
                value: 9,
            },
        );
        reg.apply(
            4,
            Sample::Record {
                subsystem: "m",
                name: "h",
                value: 16,
            },
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counter(4, "m", "c"), 2);
        assert!(matches!(
            snap.entries.get(&Key::new(4, "m", "g")),
            Some(MetricValue::Gauge(9))
        ));
        assert!(matches!(
            snap.entries.get(&Key::new(4, "m", "h")),
            Some(MetricValue::Histogram(h)) if h.count == 1
        ));
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }
}
