//! # tamp-telemetry — deterministic metrics + structured event tracing
//!
//! One observability substrate for the whole stack. The paper's entire
//! evaluation is measurement-driven (bandwidth, detection time,
//! convergence — Figs. 11–14), and before this crate every layer grew
//! its own instrumentation: `netsim::stats` counted bytes, the UDP
//! runtime had a one-off `NetCounters`, the chaos runner rendered trace
//! strings, and each harness driver re-derived metrics from raw
//! observation logs. This crate replaces all of that with:
//!
//! * a **metrics registry** ([`Registry`]) — counters, gauges, and
//!   fixed-bucket histograms keyed by `(node, subsystem, name)`, with
//!   atomic hot-path recording that works under both the simulator's
//!   virtual time and the UDP runtime's wall clock;
//! * a **structured event-trace layer** ([`Event`], [`EventLog`]) — one
//!   typed schema for network events (send/deliver/drop/fault) *and*
//!   protocol events (heartbeat sent, update relayed, suspicion
//!   armed/refuted, election round, proxy summary, sync poll), held in a
//!   bounded ring buffer with virtual-time timestamps;
//! * **exporters** ([`export`]) — canonical JSONL traces and CSV /
//!   summary-table metric dumps.
//!
//! **Determinism is a hard requirement**: every export iterates sorted
//! maps and formats integers, so two runs with the same seed produce
//! byte-identical output — the exports double as regression oracles.
//! There are no external dependencies and no clocks in this crate;
//! callers supply every timestamp.

pub mod events;
pub mod export;
pub mod metrics;

pub use events::{DropReason, Event, EventFilter, EventLog, EventRecord, ProtocolEvent};
pub use export::{events_to_jsonl, snapshot_to_csv, summary_table};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Key, MetricValue, MetricsSnapshot, Registry,
    Sample, CLUSTER,
};
