//! End-to-end tests for the baseline protocols in the simulator.

use tamp_baselines::{
    AllToAllConfig, AllToAllNode, GossipConfig, GossipNode, SwimConfig, SwimNode,
};
use tamp_directory::DirectoryClient;
use tamp_netsim::{Control, Engine, EngineConfig, SECS};
use tamp_topology::{generators, HostId};
use tamp_wire::NodeId;

fn all_to_all_cluster(
    n_segments: usize,
    per_seg: usize,
    seed: u64,
) -> (Engine, Vec<DirectoryClient>) {
    let topo = generators::star_of_segments(n_segments, per_seg);
    let mut engine = Engine::new(topo, EngineConfig::default(), seed);
    let mut clients = Vec::new();
    for h in engine.hosts() {
        let node = AllToAllNode::new(NodeId(h.0), AllToAllConfig::default());
        clients.push(node.directory_client());
        engine.add_actor(h, Box::new(node));
    }
    engine.start();
    (engine, clients)
}

fn gossip_cluster(n: usize, seed: u64) -> (Engine, Vec<DirectoryClient>) {
    let topo = generators::star_of_segments(2, n / 2);
    let mut engine = Engine::new(topo, EngineConfig::default(), seed);
    let seeds: Vec<NodeId> = engine.hosts().iter().map(|h| NodeId(h.0)).collect();
    let mut clients = Vec::new();
    for h in engine.hosts() {
        let cfg = GossipConfig {
            expected_cluster_size: n,
            seeds: seeds.clone(),
            ..Default::default()
        };
        let node = GossipNode::new(NodeId(h.0), cfg);
        clients.push(node.directory_client());
        engine.add_actor(h, Box::new(node));
    }
    engine.start();
    (engine, clients)
}

#[test]
fn all_to_all_converges_fast() {
    let (mut engine, clients) = all_to_all_cluster(2, 5, 3);
    engine.run_until(4 * SECS);
    assert!(clients.iter().all(|c| c.member_count() == 10));
}

#[test]
fn all_to_all_detects_failure_in_max_loss_periods() {
    let (mut engine, clients) = all_to_all_cluster(2, 5, 5);
    engine.run_until(10 * SECS);
    engine.schedule(10 * SECS, Control::Kill(HostId(7)));
    engine.run_until(30 * SECS);
    assert!(clients
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 7)
        .all(|(_, c)| c.member_count() == 9));
    let first = engine.stats().first_removal(NodeId(7)).unwrap();
    let last = engine.stats().last_removal(NodeId(7)).unwrap();
    let detect = first - 10 * SECS;
    assert!(
        (4 * SECS..=7 * SECS).contains(&detect),
        "detection {}ms",
        detect / 1_000_000
    );
    // Convergence ≈ detection: everyone watches everyone (within one
    // heartbeat phase of each other).
    assert!(
        last - first <= 2 * SECS,
        "spread {}ms",
        (last - first) / 1_000_000
    );
}

#[test]
fn all_to_all_traffic_is_quadratic() {
    // Aggregate received bytes/s should grow ~quadratically: 2× nodes →
    // ~4× received bytes.
    let rate = |n_per_seg: usize| {
        let (mut engine, _c) = all_to_all_cluster(2, n_per_seg, 7);
        engine.run_until(10 * SECS);
        engine.stats_mut().reset_traffic();
        engine.run_until(30 * SECS);
        engine.stats().totals().recv_bytes as f64 / 20.0
    };
    let r10 = rate(5);
    let r20 = rate(10);
    let ratio = r20 / r10;
    assert!(
        (3.0..5.0).contains(&ratio),
        "expected ~4x growth, got {ratio:.2} ({r10:.0} -> {r20:.0} B/s)"
    );
}

#[test]
fn gossip_converges_to_full_view() {
    let (mut engine, clients) = gossip_cluster(20, 11);
    engine.run_until(30 * SECS);
    for (i, c) in clients.iter().enumerate() {
        assert_eq!(c.member_count(), 20, "node {i}");
    }
}

#[test]
fn gossip_detects_failure_slower_than_heartbeats() {
    let (mut engine, clients) = gossip_cluster(20, 13);
    engine.run_until(30 * SECS);
    engine.schedule(30 * SECS, Control::Kill(HostId(19)));
    engine.run_until(90 * SECS);
    for (i, c) in clients.iter().enumerate().take(19) {
        assert_eq!(c.member_count(), 19, "node {i} still sees the dead node");
    }
    let first = engine.stats().first_removal(NodeId(19)).unwrap();
    let detect = first - 30 * SECS;
    // T_fail(20) ≈ 9.3 s — well above the heartbeat schemes' 5 s.
    assert!(
        detect > 7 * SECS && detect < 20 * SECS,
        "gossip detection {}ms",
        detect / 1_000_000
    );
}

#[test]
fn gossip_rejoin_with_higher_incarnation_clears_blacklist() {
    let (mut engine, clients) = gossip_cluster(10, 17);
    engine.run_until(20 * SECS);
    engine.schedule(20 * SECS, Control::Kill(HostId(9)));
    engine.schedule(60 * SECS, Control::Revive(HostId(9)));
    engine.run_until(140 * SECS);
    for (i, c) in clients.iter().enumerate() {
        assert_eq!(c.member_count(), 10, "node {i} missing the rejoined node");
    }
}

#[test]
fn gossip_message_bytes_scale_with_view() {
    // The defining cost of gossip: message size grows with n. Compare
    // per-node sent bytes at two sizes; with fixed fanout the per-node
    // send rate should roughly double when n doubles.
    let per_node_rate = |n: usize| {
        let (mut engine, _c) = gossip_cluster(n, 19);
        engine.run_until(20 * SECS);
        engine.stats_mut().reset_traffic();
        engine.run_until(40 * SECS);
        engine.stats().totals().sent_bytes as f64 / n as f64 / 20.0
    };
    let r10 = per_node_rate(10);
    let r20 = per_node_rate(20);
    let ratio = r20 / r10;
    assert!(
        (1.6..2.5).contains(&ratio),
        "expected ~2x per-node bytes, got {ratio:.2}"
    );
}

fn swim_cluster(n: usize, seed: u64) -> (Engine, Vec<DirectoryClient>) {
    let topo = generators::star_of_segments(2, n / 2);
    let mut engine = Engine::new(topo, EngineConfig::default(), seed);
    let seeds: Vec<NodeId> = engine.hosts().iter().map(|h| NodeId(h.0)).collect();
    let mut clients = Vec::new();
    for h in engine.hosts() {
        let cfg = SwimConfig {
            seeds: seeds.clone(),
            ..Default::default()
        };
        let node = SwimNode::new(NodeId(h.0), cfg);
        clients.push(node.directory_client());
        engine.add_actor(h, Box::new(node));
    }
    engine.start();
    (engine, clients)
}

#[test]
fn swim_converges_to_full_view() {
    let (mut engine, clients) = swim_cluster(10, 23);
    engine.run_until(30 * SECS);
    for (i, c) in clients.iter().enumerate() {
        assert_eq!(c.member_count(), 10, "node {i}");
    }
}

#[test]
fn swim_detects_failure_within_probe_and_suspect_window() {
    let (mut engine, clients) = swim_cluster(10, 29);
    engine.run_until(30 * SECS);
    engine.schedule(30 * SECS, Control::Kill(HostId(7)));
    engine.run_until(60 * SECS);
    for (i, c) in clients.iter().enumerate().filter(|(i, _)| *i != 7) {
        assert_eq!(c.member_count(), 9, "node {i} still sees the dead node");
    }
    let first = engine.stats().first_removal(NodeId(7)).unwrap();
    let detect = first - 30 * SECS;
    // Time-to-first-probe (up to one lap of the n-member permutation at
    // one probe per second) + direct/indirect phases + 5 s suspicion.
    assert!(
        (5 * SECS..=20 * SECS).contains(&detect),
        "swim detection {}ms",
        detect / 1_000_000
    );
    // Piggybacked dissemination converges within a few probe periods.
    let last = engine.stats().last_removal(NodeId(7)).unwrap();
    assert!(
        last - first <= 12 * SECS,
        "spread {}ms",
        (last - first) / 1_000_000
    );
}

#[test]
fn swim_refutes_a_live_but_partitioned_probe_miss() {
    // Kill and quickly revive a node: the revived node re-incarnates on
    // restart, so even nodes that suspected (or confirmed) it converge
    // back to the full view.
    let (mut engine, clients) = swim_cluster(10, 31);
    engine.run_until(30 * SECS);
    engine.schedule(30 * SECS, Control::Kill(HostId(4)));
    engine.schedule(50 * SECS, Control::Revive(HostId(4)));
    engine.run_until(110 * SECS);
    for (i, c) in clients.iter().enumerate() {
        assert_eq!(c.member_count(), 10, "node {i} missing the rejoined node");
    }
}

#[test]
fn swim_probe_traffic_is_constant_per_node() {
    // SWIM's defining cost property: per-node send rate is O(1) in
    // cluster size (one probe per period + bounded piggyback), unlike
    // gossip's O(n) messages or all-to-all's O(n) heartbeat fan-out.
    let per_node_rate = |n: usize| {
        let (mut engine, _c) = swim_cluster(n, 37);
        engine.run_until(20 * SECS);
        engine.stats_mut().reset_traffic();
        engine.run_until(40 * SECS);
        engine.stats().totals().sent_bytes as f64 / n as f64 / 20.0
    };
    let r10 = per_node_rate(10);
    let r20 = per_node_rate(20);
    let ratio = r20 / r10;
    assert!(
        ratio < 1.5,
        "expected ~flat per-node bytes, got {ratio:.2}x ({r10:.0} -> {r20:.0} B/s)"
    );
}

#[test]
fn deterministic_swim() {
    let run = |seed: u64| {
        let (mut engine, clients) = swim_cluster(10, seed);
        engine.schedule(20 * SECS, Control::Kill(HostId(3)));
        engine.run_until(45 * SECS);
        let counts: Vec<_> = clients.iter().map(|c| c.member_count()).collect();
        (counts, engine.stats().totals().sent_bytes)
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn deterministic_baselines() {
    let run = |seed: u64| {
        let (mut engine, clients) = gossip_cluster(10, seed);
        engine.run_until(25 * SECS);
        clients.iter().map(|c| c.member_count()).collect::<Vec<_>>()
    };
    assert_eq!(run(42), run(42));
}
