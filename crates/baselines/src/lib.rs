//! # tamp-baselines — the paper's two comparison protocols
//!
//! The evaluation (paper §6) compares the hierarchical membership service
//! against:
//!
//! * [`AllToAllNode`] — every node multicasts a heartbeat to the whole
//!   cluster once per period and independently tracks everyone else
//!   (§2). Perfect fault isolation, `O(n²)` aggregate traffic: the
//!   motivation for the hierarchical design (Fig. 2).
//! * [`GossipNode`] — the gossip-style failure-detection service of
//!   van Renesse et al. (§2, \[23\]): each node keeps a heartbeat counter
//!   per member, periodically sends its whole view to a few random peers,
//!   and declares a member failed when its counter has not advanced for
//!   `T_fail`. Probabilistic, `Θ(n·s)` bytes *per message*, detection
//!   time growing with `log n`.
//!
//! A third, newer baseline rides along for perspective the paper could
//! not have had in 2003:
//!
//! * [`SwimNode`] — SWIM (Das, Gupta & Motivala, DSN 2002): round-robin
//!   direct probes over a randomized permutation, `k` indirect probes
//!   via ping-req on a missed ack, and suspect/alive/confirm updates
//!   piggybacked on the probe traffic itself with incarnation-number
//!   refutation. Constant per-node probe load, `O(log n)` dissemination
//!   latency, bounded worst-case detection time.
//!
//! All implement the same sans-io [`tamp_netsim::Actor`] interface as
//! the hierarchical node, publish the same [`tamp_directory`] yellow
//! pages, and emit the same add/remove observations, so the experiment
//! harness can swap protocols behind one interface.

mod alltoall;
mod gossip;
mod swim;

pub use alltoall::{AllToAllConfig, AllToAllNode};
pub use gossip::{GossipConfig, GossipNode};
pub use swim::{SwimConfig, SwimNode};
