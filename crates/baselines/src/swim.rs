//! SWIM failure detection (Das, Gupta & Motivala, DSN 2002) — the
//! modern baseline ROADMAP item 3 calls for, a design the paper (2003)
//! never compared against.
//!
//! Each protocol period a node pings one member, chosen by walking a
//! randomized permutation of its view (round-robin with a shuffle per
//! lap, SWIM §4.3: bounded worst-case detection time instead of the
//! gossip baseline's probabilistic tail). If the direct ack misses its
//! deadline, `k` randomly chosen members are asked to `ping-req` the
//! target through a disjoint network path; only when the indirect phase
//! also stays silent is the target *suspected* — and a suspicion is
//! refutable: the subject, on hearing it via piggybacked dissemination,
//! bumps its incarnation number and floods an `Alive` that overrides the
//! suspicion everywhere. Unrefuted suspicions are confirmed dead after
//! `suspect_timeout`.
//!
//! Membership updates (alive / suspect / confirm) travel **piggybacked**
//! on the probe traffic itself — zero dedicated dissemination packets —
//! with a per-update retransmission budget of `λ·⌈log₂(n+1)⌉` sends
//! (SWIM's infection-style dissemination bound).
//!
//! The node publishes the same [`tamp_directory`] yellow pages and
//! add/remove/suspect/refute observations as the other baselines, so it
//! drops into every harness surface as one more protocol column.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use tamp_directory::{DirectoryClient, Provenance, SharedDirectory};
use tamp_netsim::{Actor, Context, Nanos, PacketMeta, ProtocolEvent, SECS};
use tamp_wire::{
    Message, NodeId, NodeRecord, ServiceDecl, SwimAck, SwimPing, SwimPingReq, SwimState, SwimUpdate,
};

const MILLIS: Nanos = 1_000_000;

/// Tunables for one SWIM node (defaults per SNIPPETS.md ADR-001).
#[derive(Debug, Clone)]
pub struct SwimConfig {
    /// Protocol period: one direct probe per period.
    pub probe_period: Nanos,
    /// Deadline for the direct ack before escalating to ping-req.
    pub direct_timeout: Nanos,
    /// Deadline for the indirect (ping-req) phase after escalation.
    pub indirect_timeout: Nanos,
    /// `k`: members asked to probe the target indirectly.
    pub indirect_probes: usize,
    /// How long a suspicion stays refutable before it is confirmed.
    pub suspect_timeout: Nanos,
    /// Maximum piggybacked updates per message (besides the sender's
    /// own alive record, which always rides along).
    pub piggyback_max: usize,
    /// `λ` in the `λ·⌈log₂(n+1)⌉` per-update retransmission budget.
    pub retransmit_factor: f64,
    /// The address book: node ids this node may probe before it has
    /// learned any membership (the harness lists the whole cluster,
    /// like the gossip baseline's seed list).
    pub seeds: Vec<NodeId>,
    /// First-probe phase jitter.
    pub startup_jitter: Nanos,
    /// Deadline-check granularity.
    pub sweep_period: Nanos,
    /// How long a confirmed death is remembered, so stale alive updates
    /// at the dead incarnation cannot resurrect it (a ping *from* a
    /// dead-listed node gets the confirmation echoed back, so a wrongly
    /// confirmed node learns to re-incarnate — targeted anti-entropy).
    /// Kept long: a forgotten death makes its seed look uncontacted
    /// again and draws bootstrap probes.
    pub cleanup_window: Nanos,
    /// Every this-many protocol periods, additionally ping one random
    /// dead-listed node (Serf-style reconnect). A really-dead node
    /// ignores it; a node on the far side of a healed partition answers,
    /// which triggers the dead-list echo → re-incarnation → alive-flood
    /// cascade that merges the views back. Without it, two sides that
    /// confirmed each other dead during a partition never exchange
    /// another packet. `0` disables.
    pub reconnect_every: u32,
    /// Services to export.
    pub services: Vec<ServiceDecl>,
    /// Pad this node's record so one update costs the same bytes as
    /// one heartbeat in the other schemes (228 B in the paper).
    pub pad_record_to: usize,
}

impl Default for SwimConfig {
    fn default() -> Self {
        SwimConfig {
            probe_period: SECS,
            direct_timeout: 500 * MILLIS,
            indirect_timeout: 200 * MILLIS,
            indirect_probes: 3,
            suspect_timeout: 5 * SECS,
            piggyback_max: 6,
            retransmit_factor: 3.0,
            seeds: Vec::new(),
            startup_jitter: 500 * MILLIS,
            sweep_period: 100 * MILLIS,
            cleanup_window: 600 * SECS,
            reconnect_every: 5,
            services: Vec::new(),
            pad_record_to: 228,
        }
    }
}

const T_PROBE: u64 = 1;
const T_SWEEP: u64 = 2;

/// Per-member state: where it sits on the Alive < Suspect lattice (a
/// Confirm removes the member outright) and the record we last merged.
struct Member {
    state: SwimState,
    record: NodeRecord,
    /// When `state` last changed (suspicions age against this).
    since: Nanos,
}

/// A confirmed death kept on the books for `cleanup_window`.
struct DeadEntry {
    record: NodeRecord,
    since: Nanos,
}

/// The one in-flight direct probe.
#[derive(Clone, Copy)]
struct PendingProbe {
    target: NodeId,
    seq: u64,
    sent_at: Nanos,
    /// When the ping-req escalation went out (None while still in the
    /// direct phase).
    indirect_at: Option<Nanos>,
}

/// Bookkeeping for a ping we sent on someone else's behalf.
struct ProxyEntry {
    requester: NodeId,
    orig_seq: u64,
    expires: Nanos,
}

/// One queued dissemination update with its remaining send budget.
struct QueuedUpdate {
    update: SwimUpdate,
    remaining: u32,
}

/// One node of the SWIM baseline.
pub struct SwimNode {
    cfg: SwimConfig,
    me: NodeId,
    incarnation: u64,
    crashed: bool,
    record: NodeRecord,
    directory: SharedDirectory,
    members: BTreeMap<NodeId, Member>,
    dead: BTreeMap<NodeId, DeadEntry>,
    /// Current randomized probe permutation and the cursor into it.
    order: Vec<NodeId>,
    order_pos: usize,
    seq: u64,
    pending: Option<PendingProbe>,
    /// Proxy pings we issued for ping-req requesters, keyed by our seq.
    proxied: HashMap<u64, ProxyEntry>,
    queue: Vec<QueuedUpdate>,
    /// Protocol periods since the last dead-list reconnect ping.
    periods_since_reconnect: u32,
    member_count: Arc<Mutex<usize>>,
}

impl SwimNode {
    pub fn new(me: NodeId, cfg: SwimConfig) -> Self {
        let mut n = SwimNode {
            record: NodeRecord::new(me, 0),
            me,
            incarnation: 0,
            crashed: false,
            directory: SharedDirectory::new(),
            members: BTreeMap::new(),
            dead: BTreeMap::new(),
            order: Vec::new(),
            order_pos: 0,
            seq: 0,
            pending: None,
            proxied: HashMap::new(),
            queue: Vec::new(),
            periods_since_reconnect: 0,
            member_count: Arc::new(Mutex::new(0)),
            cfg,
        };
        n.rebuild_record();
        n
    }

    /// Yellow-page read handle.
    pub fn directory_client(&self) -> DirectoryClient {
        self.directory.client()
    }

    /// Cheap member-count probe for tests/harness.
    pub fn member_count_probe(&self) -> Arc<Mutex<usize>> {
        Arc::clone(&self.member_count)
    }

    fn rebuild_record(&mut self) {
        let mut r = NodeRecord::new(self.me, self.incarnation);
        r.services = self.cfg.services.clone();
        if self.cfg.pad_record_to > 0 {
            r.pad_to_encoded_size(self.cfg.pad_record_to);
        }
        self.record = r;
    }

    fn refresh_probe(&self) {
        *self.member_count.lock() = self.directory.read(|d| d.len());
    }

    /// Per-update retransmission budget: `λ·⌈log₂(n+1)⌉`, n = current
    /// view size including self.
    fn budget(&self) -> u32 {
        let n = (self.members.len() + 2) as f64; // n + 1, self included
        ((self.cfg.retransmit_factor * n.log2().ceil()) as u32).max(1)
    }

    /// Does `new` override `old` on the SWIM state lattice? Confirm
    /// beats alive/suspect up to its incarnation, suspect beats alive at
    /// the *same* incarnation, and a higher incarnation beats everything
    /// below it (only the subject itself mints new incarnations, which
    /// is what makes refutation authoritative).
    fn overrides(new: (SwimState, u64), old: (SwimState, u64)) -> bool {
        use SwimState::*;
        let (ns, ni) = new;
        let (os, oi) = old;
        match (ns, os) {
            (Confirm, Confirm) => ni > oi,
            (Confirm, _) => ni >= oi,
            (Alive, Alive) | (Alive, Suspect) | (Alive, Confirm) => ni > oi,
            (Suspect, Alive) => ni >= oi,
            (Suspect, Suspect) => ni > oi,
            (Suspect, Confirm) => false,
        }
    }

    /// Queue `upd` for piggybacked dissemination with a fresh budget,
    /// replacing any queued update about the same subject it overrides.
    fn queue_update(&mut self, upd: SwimUpdate) {
        let budget = self.budget();
        let subject = upd.record.node;
        if let Some(q) = self
            .queue
            .iter_mut()
            .find(|q| q.update.record.node == subject)
        {
            let new = (upd.state, upd.record.incarnation);
            let old = (q.update.state, q.update.record.incarnation);
            if Self::overrides(new, old) {
                q.update = upd;
                q.remaining = budget;
            }
            return;
        }
        self.queue.push(QueuedUpdate {
            update: upd,
            remaining: budget,
        });
    }

    /// Updates to ride on the next outgoing message: our own alive
    /// record always leads, then the freshest-budget queued updates up
    /// to `piggyback_max`, each spending one unit of budget.
    fn select_updates(&mut self) -> Vec<SwimUpdate> {
        self.queue.sort_by(|a, b| {
            b.remaining
                .cmp(&a.remaining)
                .then(a.update.record.node.cmp(&b.update.record.node))
        });
        // Under heavy backlog (mass join or mass churn) the cap would
        // stretch the drain across minutes of protocol periods; spill
        // over and send everything — the datagram analog of the
        // full-state push-pull sync production SWIM implementations
        // fall back to in exactly these situations. Steady state (a
        // handful of queued updates) stays under the normal cap.
        let take = if self.queue.len() > 2 * self.cfg.piggyback_max {
            self.queue.len()
        } else {
            self.queue.len().min(self.cfg.piggyback_max)
        };
        let mut out = Vec::with_capacity(take + 1);
        out.push(SwimUpdate {
            state: SwimState::Alive,
            record: self.record.clone(),
        });
        for q in self.queue.iter_mut().take(take) {
            out.push(q.update.clone());
            q.remaining -= 1;
        }
        self.queue.retain(|q| q.remaining > 0);
        out
    }

    /// A packet from `from` (or an ack vouching for `from`) is proof of
    /// life: clear any local suspicion of it. No dissemination — on the
    /// lattice only the subject's own re-incarnation clears suspicion
    /// globally; this keeps *our* view from confirming a member we can
    /// demonstrably reach.
    fn mark_alive(&mut self, ctx: &mut Context, from: NodeId, now: Nanos) {
        if let Some(m) = self.members.get_mut(&from) {
            if m.state == SwimState::Suspect {
                m.state = SwimState::Alive;
                m.since = now;
                ctx.count("swim", "suspicions_refuted", 1);
                ctx.emit(ProtocolEvent::SuspicionRefuted { subject: from.0 });
                ctx.observe_refuted(from);
            }
        }
    }

    /// Apply a batch. `disseminate` queues each absorbed update for
    /// piggybacked retransmission — true for gossip (`updates`), false
    /// for join-time state transfer (`sync`), which every receiver
    /// already re-serves to its own joiners and must not re-flood.
    fn apply_updates(&mut self, ctx: &mut Context, updates: &[SwimUpdate], disseminate: bool) {
        for u in updates {
            self.apply_update(ctx, u, disseminate);
        }
    }

    fn apply_update(&mut self, ctx: &mut Context, upd: &SwimUpdate, disseminate: bool) {
        let subject = upd.record.node;
        let inc = upd.record.incarnation;
        let now = ctx.now();

        // An accusation naming us is a false positive: refute by
        // re-incarnating — only a strictly higher incarnation beats the
        // suspicion at nodes that already adopted it.
        if subject == self.me {
            if upd.state != SwimState::Alive && inc >= self.incarnation {
                self.incarnation = inc + 1;
                self.rebuild_record();
                let rec = self.record.clone();
                self.directory
                    .update(|d| (d.apply_join(rec, Provenance::Local, now).changed(), ()));
                ctx.count("swim", "self_refutes", 1);
                let own = SwimUpdate {
                    state: SwimState::Alive,
                    record: self.record.clone(),
                };
                self.queue_update(own);
            }
            return;
        }

        // The dead list wins over stale state, but a higher incarnation
        // is a genuine rebirth.
        if let Some(d) = self.dead.get(&subject) {
            if !(upd.state == SwimState::Alive && inc > d.record.incarnation) {
                return;
            }
            self.dead.remove(&subject);
        }

        match self.members.get_mut(&subject) {
            None => {
                match upd.state {
                    SwimState::Confirm => {
                        // Death of a node we never met: remember the
                        // verdict (and pass it on) so its stale alive
                        // updates cannot introduce it later.
                        self.dead.insert(
                            subject,
                            DeadEntry {
                                record: upd.record.clone(),
                                since: now,
                            },
                        );
                        self.directory
                            .update(|d| (d.apply_leave(subject, inc, now).changed(), ()));
                        if disseminate {
                            self.queue_update(upd.clone());
                        }
                    }
                    state => {
                        self.members.insert(
                            subject,
                            Member {
                                state,
                                record: upd.record.clone(),
                                since: now,
                            },
                        );
                        let rec = upd.record.clone();
                        self.directory
                            .update(|d| (d.apply_join(rec, Provenance::Direct, now).changed(), ()));
                        ctx.observe_added(subject);
                        if state == SwimState::Suspect {
                            ctx.count("swim", "suspicions_raised", 1);
                            ctx.emit(ProtocolEvent::SuspicionArmed { subject: subject.0 });
                            ctx.observe_suspected(subject);
                        }
                        if disseminate {
                            self.queue_update(upd.clone());
                        }
                    }
                }
            }
            Some(m) => {
                let old = (m.state, m.record.incarnation);
                if !Self::overrides((upd.state, inc), old) {
                    // Same-incarnation alive updates may still carry
                    // content changes (service registration): merge the
                    // record without treating it as a state transition.
                    if upd.state == SwimState::Alive
                        && m.state == SwimState::Alive
                        && inc == m.record.incarnation
                    {
                        m.record = upd.record.clone();
                        let rec = upd.record.clone();
                        self.directory
                            .update(|d| (d.apply_join(rec, Provenance::Direct, now).changed(), ()));
                    }
                    return;
                }
                match upd.state {
                    SwimState::Alive => {
                        let was_suspect = m.state == SwimState::Suspect;
                        m.state = SwimState::Alive;
                        m.record = upd.record.clone();
                        m.since = now;
                        let rec = upd.record.clone();
                        self.directory
                            .update(|d| (d.apply_join(rec, Provenance::Direct, now).changed(), ()));
                        if was_suspect {
                            ctx.count("swim", "suspicions_refuted", 1);
                            ctx.emit(ProtocolEvent::SuspicionRefuted { subject: subject.0 });
                            ctx.observe_refuted(subject);
                        }
                        if disseminate {
                            self.queue_update(upd.clone());
                        }
                    }
                    SwimState::Suspect => {
                        let was_alive = m.state == SwimState::Alive;
                        m.state = SwimState::Suspect;
                        if inc > m.record.incarnation {
                            m.record = upd.record.clone();
                        }
                        m.since = now;
                        if was_alive {
                            ctx.count("swim", "suspicions_raised", 1);
                            ctx.emit(ProtocolEvent::SuspicionArmed { subject: subject.0 });
                            ctx.observe_suspected(subject);
                        }
                        if disseminate {
                            self.queue_update(upd.clone());
                        }
                    }
                    SwimState::Confirm => {
                        let was_suspect = m.state == SwimState::Suspect;
                        self.remove_member(ctx, subject, inc, now, was_suspect);
                        if disseminate {
                            self.queue_update(upd.clone());
                        }
                    }
                }
            }
        }
        self.refresh_probe();
    }

    /// Apply a confirmed death: drop the member, tombstone it on the
    /// dead list, and withdraw it from the yellow pages.
    fn remove_member(
        &mut self,
        ctx: &mut Context,
        subject: NodeId,
        inc: u64,
        now: Nanos,
        was_suspect: bool,
    ) {
        let Some(m) = self.members.remove(&subject) else {
            return;
        };
        self.dead.insert(
            subject,
            DeadEntry {
                record: m.record,
                since: now,
            },
        );
        self.directory
            .update(|d| (d.apply_leave(subject, inc, now).changed(), ()));
        ctx.count("swim", "deaths_declared", 1);
        if was_suspect {
            ctx.count("swim", "suspicions_confirmed", 1);
            ctx.emit(ProtocolEvent::SuspicionConfirmed { subject: subject.0 });
        }
        ctx.observe_removed(subject);
        self.refresh_probe();
    }

    /// Our probe (direct + indirect) got no answer: suspect the target.
    fn suspect(&mut self, ctx: &mut Context, target: NodeId) {
        let now = ctx.now();
        let Some(m) = self.members.get_mut(&target) else {
            return;
        };
        if m.state == SwimState::Suspect {
            return;
        }
        m.state = SwimState::Suspect;
        m.since = now;
        let upd = SwimUpdate {
            state: SwimState::Suspect,
            record: m.record.clone(),
        };
        ctx.count("swim", "suspicions_raised", 1);
        ctx.emit(ProtocolEvent::SuspicionArmed { subject: target.0 });
        ctx.observe_suspected(target);
        self.queue_update(upd);
    }

    /// Next member to probe: walk the randomized permutation, reshuffle
    /// a fresh one each lap (bounded worst-case detection: every member
    /// is probed once per lap). Seeds we have never contacted come
    /// first — SWIM's join protocol stands in for dedicated anti-entropy
    /// here; without it, simultaneously booting nodes can pair off into
    /// islands whose piggyback queues dry up before the views merge.
    fn next_probe_target(&mut self, ctx: &mut Context) -> Option<NodeId> {
        let me = self.me;
        let unseen: Vec<NodeId> = self
            .cfg
            .seeds
            .iter()
            .copied()
            .filter(|&s| s != me && !self.members.contains_key(&s) && !self.dead.contains_key(&s))
            .collect();
        if !unseen.is_empty() {
            return Some(unseen[ctx.rand_below(unseen.len() as u64) as usize]);
        }
        if self.members.is_empty() {
            return None;
        }
        loop {
            if self.order_pos >= self.order.len() {
                self.order = self.members.keys().copied().collect();
                for i in (1..self.order.len()).rev() {
                    let j = ctx.rand_below((i + 1) as u64) as usize;
                    self.order.swap(i, j);
                }
                self.order_pos = 0;
            }
            let t = self.order[self.order_pos];
            self.order_pos += 1;
            if self.members.contains_key(&t) {
                return Some(t);
            }
        }
    }

    /// `k` random live members (≠ target) to route ping-reqs through.
    fn indirect_helpers(&self, ctx: &mut Context, target: NodeId) -> Vec<NodeId> {
        let mut candidates: Vec<NodeId> = self
            .members
            .keys()
            .copied()
            .filter(|&n| n != target)
            .collect();
        let mut out = Vec::new();
        for _ in 0..self.cfg.indirect_probes.min(candidates.len()) {
            let i = ctx.rand_below(candidates.len() as u64) as usize;
            out.push(candidates.swap_remove(i));
        }
        out
    }
}

impl Actor for SwimNode {
    fn on_start(&mut self, ctx: &mut Context) {
        if self.crashed {
            self.crashed = false;
            self.members.clear();
            self.dead.clear();
            self.order.clear();
            self.order_pos = 0;
            self.pending = None;
            self.proxied.clear();
            self.queue.clear();
            self.periods_since_reconnect = 0;
            self.directory.update(|d| {
                *d = tamp_directory::Directory::new();
                (true, ())
            });
        }
        self.incarnation += 1;
        self.rebuild_record();
        let rec = self.record.clone();
        let now = ctx.now();
        self.directory
            .update(|d| (d.apply_join(rec, Provenance::Local, now).changed(), ()));
        let phase = ctx.jitter(self.cfg.startup_jitter);
        ctx.set_timer(phase + self.cfg.probe_period, T_PROBE);
        ctx.set_timer(self.cfg.sweep_period, T_SWEEP);
        self.refresh_probe();
    }

    fn on_crash(&mut self) {
        self.crashed = true;
        self.directory.update(|d| {
            *d = tamp_directory::Directory::new();
            (true, ())
        });
    }

    fn on_packet(&mut self, ctx: &mut Context, _meta: PacketMeta, msg: &Message) {
        let now = ctx.now();
        match msg {
            Message::SwimPing(p) => {
                if p.from == self.me {
                    return;
                }
                // A ping from a node we have never heard of is a join:
                // answer with our full view (SWIM transfers the
                // membership list to joiners), not just the piggyback
                // queue — the only state transfer beyond piggybacking.
                let newcomer =
                    !self.members.contains_key(&p.from) && !self.dead.contains_key(&p.from);
                self.mark_alive(ctx, p.from, now);
                self.apply_updates(ctx, &p.updates, true);
                let updates = self.select_updates();
                // Join-time state transfer rides in `sync`, not
                // `updates`: the receiver applies it without a
                // dissemination budget, so n pairwise first contacts at
                // boot don't each re-flood the whole view.
                let mut sync = Vec::new();
                if newcomer {
                    for (&n, m) in &self.members {
                        if n != p.from && !updates.iter().any(|u| u.record.node == n) {
                            sync.push(SwimUpdate {
                                state: m.state,
                                record: m.record.clone(),
                            });
                        }
                    }
                }
                // Targeted anti-entropy: a ping *from* a node we hold
                // confirmed dead means the confirmation never reached it
                // — echo it back so the node re-incarnates and its next
                // alive update resurrects it everywhere.
                if let Some(d) = self.dead.get(&p.from) {
                    sync.push(SwimUpdate {
                        state: SwimState::Confirm,
                        record: d.record.clone(),
                    });
                }
                ctx.count("swim", "acks_sent", 1);
                ctx.send_unicast(
                    p.from,
                    Message::SwimAck(SwimAck {
                        from: self.me,
                        subject: self.me,
                        seq: p.seq,
                        updates,
                        sync,
                    }),
                );
            }
            Message::SwimPingReq(r) => {
                if r.from == self.me || r.target == self.me {
                    return;
                }
                self.mark_alive(ctx, r.from, now);
                self.apply_updates(ctx, &r.updates, true);
                // Probe the target on the requester's behalf; the ack
                // comes back to us and is forwarded below.
                self.seq += 1;
                self.proxied.insert(
                    self.seq,
                    ProxyEntry {
                        requester: r.from,
                        orig_seq: r.seq,
                        expires: now + self.cfg.direct_timeout + self.cfg.indirect_timeout,
                    },
                );
                let updates = self.select_updates();
                ctx.count("swim", "indirect_probes_sent", 1);
                ctx.send_unicast(
                    r.target,
                    Message::SwimPing(SwimPing {
                        from: self.me,
                        seq: self.seq,
                        updates,
                    }),
                );
            }
            Message::SwimAck(a) => {
                if a.from == self.me {
                    return;
                }
                self.mark_alive(ctx, a.from, now);
                self.apply_updates(ctx, &a.updates, true);
                self.apply_updates(ctx, &a.sync, false);
                // The ack vouches for its subject (== from for a direct
                // ack; the probed target when forwarded by a helper).
                self.mark_alive(ctx, a.subject, now);
                if let Some(proxy) = self.proxied.remove(&a.seq) {
                    let updates = self.select_updates();
                    ctx.count("swim", "acks_forwarded", 1);
                    ctx.send_unicast(
                        proxy.requester,
                        Message::SwimAck(SwimAck {
                            from: self.me,
                            subject: a.subject,
                            seq: proxy.orig_seq,
                            updates,
                            sync: Vec::new(),
                        }),
                    );
                } else if self
                    .pending
                    .is_some_and(|p| p.seq == a.seq && p.target == a.subject)
                {
                    self.pending = None;
                }
            }
            _ => {}
        }
        self.refresh_probe();
    }

    fn on_timer(&mut self, ctx: &mut Context, token: u64) {
        let now = ctx.now();
        match token {
            T_PROBE => {
                if let Some(target) = self.next_probe_target(ctx) {
                    self.seq += 1;
                    let seq = self.seq;
                    let updates = self.select_updates();
                    ctx.count("swim", "probes_sent", 1);
                    ctx.send_unicast(
                        target,
                        Message::SwimPing(SwimPing {
                            from: self.me,
                            seq,
                            updates,
                        }),
                    );
                    self.pending = Some(PendingProbe {
                        target,
                        seq,
                        sent_at: now,
                        indirect_at: None,
                    });
                }
                // Serf-style reconnect: fire-and-forget ping at one
                // random dead-listed node (no pending entry — a missed
                // ack must not re-suspect an already-confirmed death).
                self.periods_since_reconnect += 1;
                if self.cfg.reconnect_every > 0
                    && self.periods_since_reconnect >= self.cfg.reconnect_every
                    && !self.dead.is_empty()
                {
                    self.periods_since_reconnect = 0;
                    let i = ctx.rand_below(self.dead.len() as u64) as usize;
                    let target = *self.dead.keys().nth(i).expect("index < len");
                    self.seq += 1;
                    let seq = self.seq;
                    let updates = self.select_updates();
                    ctx.count("swim", "reconnect_probes_sent", 1);
                    ctx.send_unicast(
                        target,
                        Message::SwimPing(SwimPing {
                            from: self.me,
                            seq,
                            updates,
                        }),
                    );
                }
                ctx.set_timer(self.cfg.probe_period, T_PROBE);
            }
            T_SWEEP => {
                // Probe deadlines: direct miss escalates to ping-req,
                // indirect miss turns into a suspicion.
                if let Some(p) = self.pending {
                    if p.indirect_at.is_none() && now >= p.sent_at + self.cfg.direct_timeout {
                        let helpers = self.indirect_helpers(ctx, p.target);
                        if helpers.is_empty() {
                            self.pending = None;
                            self.suspect(ctx, p.target);
                        } else {
                            for h in helpers {
                                let updates = self.select_updates();
                                ctx.count("swim", "ping_reqs_sent", 1);
                                ctx.send_unicast(
                                    h,
                                    Message::SwimPingReq(SwimPingReq {
                                        from: self.me,
                                        target: p.target,
                                        seq: p.seq,
                                        updates,
                                    }),
                                );
                            }
                            self.pending = Some(PendingProbe {
                                indirect_at: Some(now),
                                ..p
                            });
                        }
                    } else if p
                        .indirect_at
                        .is_some_and(|t0| now >= t0 + self.cfg.indirect_timeout)
                    {
                        self.pending = None;
                        self.suspect(ctx, p.target);
                    }
                }
                // Unrefuted suspicions confirm after the window
                // (BTreeMap order keeps this deterministic).
                let due: Vec<(NodeId, u64)> = self
                    .members
                    .iter()
                    .filter(|(_, m)| {
                        m.state == SwimState::Suspect
                            && now.saturating_sub(m.since) >= self.cfg.suspect_timeout
                    })
                    .map(|(&n, m)| (n, m.record.incarnation))
                    .collect();
                for (n, inc) in due {
                    self.remove_member(ctx, n, inc, now, true);
                    let rec = self.dead.get(&n).map(|d| d.record.clone());
                    if let Some(record) = rec {
                        self.queue_update(SwimUpdate {
                            state: SwimState::Confirm,
                            record,
                        });
                    }
                }
                self.proxied.retain(|_, p| now < p.expires);
                self.dead
                    .retain(|_, d| now.saturating_sub(d.since) < self.cfg.cleanup_window);
                ctx.set_timer(self.cfg.sweep_period, T_SWEEP);
                self.refresh_probe();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tamp_netsim::{collect_effects, Destination, Effect};
    use tamp_topology::HostId;

    fn sends(effects: &[Effect]) -> Vec<(&Destination, &Message)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { dest, msg } => Some((dest, msg)),
                _ => None,
            })
            .collect()
    }

    struct Harness {
        node: SwimNode,
        rng: StdRng,
    }

    impl Harness {
        fn new(id: u32, cfg: SwimConfig) -> Self {
            let mut h = Harness {
                node: SwimNode::new(NodeId(id), cfg),
                rng: StdRng::seed_from_u64(9),
            };
            let me = HostId(id);
            let (node, rng) = (&mut h.node, &mut h.rng);
            let _ = collect_effects(0, me, rng, |ctx| node.on_start(ctx));
            h
        }

        fn timer(&mut self, now: u64, token: u64) -> Vec<Effect> {
            let (node, rng) = (&mut self.node, &mut self.rng);
            collect_effects(now, HostId(node.me.0), rng, |ctx| node.on_timer(ctx, token))
        }

        fn packet(&mut self, now: u64, from: u32, msg: Message) -> Vec<Effect> {
            let (node, rng) = (&mut self.node, &mut self.rng);
            collect_effects(now, HostId(node.me.0), rng, |ctx| {
                node.on_packet(ctx, PacketMeta::unicast(HostId(from), 100), &msg)
            })
        }
    }

    fn alive(id: u32, inc: u64) -> SwimUpdate {
        SwimUpdate {
            state: SwimState::Alive,
            record: NodeRecord::new(NodeId(id), inc),
        }
    }

    #[test]
    fn probe_timer_pings_a_seed_before_any_contact() {
        let cfg = SwimConfig {
            seeds: vec![NodeId(1), NodeId(2), NodeId(3)],
            ..Default::default()
        };
        let mut h = Harness::new(1, cfg);
        let fx = h.timer(SECS, T_PROBE);
        let s = sends(&fx);
        assert_eq!(s.len(), 1);
        let Message::SwimPing(p) = s[0].1 else {
            panic!("expected ping, got {:?}", s[0].1.kind());
        };
        assert_eq!(p.from, NodeId(1));
        assert_ne!(s[0].0, &Destination::Unicast(HostId(1)), "never self");
        // Own alive record always piggybacks.
        assert_eq!(p.updates[0].record.node, NodeId(1));
        assert_eq!(p.updates[0].state, SwimState::Alive);
    }

    #[test]
    fn ping_is_acked_with_matching_seq() {
        let mut h = Harness::new(1, SwimConfig::default());
        let ping = Message::SwimPing(SwimPing {
            from: NodeId(2),
            seq: 41,
            updates: vec![alive(2, 1)],
        });
        let fx = h.packet(SECS, 2, ping);
        let s = sends(&fx);
        assert_eq!(s.len(), 1);
        let Message::SwimAck(a) = s[0].1 else {
            panic!("expected ack");
        };
        assert_eq!((a.from, a.subject, a.seq), (NodeId(1), NodeId(1), 41));
        // The piggybacked alive update introduced node 2.
        assert!(h.node.members.contains_key(&NodeId(2)));
    }

    #[test]
    fn missed_direct_ack_escalates_to_ping_req_then_suspicion() {
        let cfg = SwimConfig::default();
        let (direct, indirect) = (cfg.direct_timeout, cfg.indirect_timeout);
        let mut h = Harness::new(1, cfg);
        // Introduce members 2..=5.
        for id in 2..=5 {
            let ping = Message::SwimPing(SwimPing {
                from: NodeId(id),
                seq: 1,
                updates: vec![alive(id, 1)],
            });
            h.packet(SECS, id, ping);
        }
        // Probe fires; force the target to be whatever it picked.
        let fx = h.timer(2 * SECS, T_PROBE);
        let target = match sends(&fx)[0].1 {
            Message::SwimPing(p) => {
                let _ = p;
                match sends(&fx)[0].0 {
                    Destination::Unicast(h) => NodeId(h.0),
                    _ => panic!("unicast expected"),
                }
            }
            _ => panic!("ping expected"),
        };
        // Direct deadline passes: k ping-reqs to other members.
        let fx = h.timer(2 * SECS + direct, T_SWEEP);
        let reqs: Vec<_> = sends(&fx)
            .into_iter()
            .filter(|(_, m)| matches!(m, Message::SwimPingReq(_)))
            .collect();
        assert_eq!(reqs.len(), 3, "k=3 indirect probes");
        for (dest, m) in &reqs {
            let Message::SwimPingReq(r) = m else { panic!() };
            assert_eq!(r.target, target);
            assert_ne!(dest, &&Destination::Unicast(HostId(target.0)));
        }
        // Indirect deadline passes silently: target suspected.
        let _ = h.timer(2 * SECS + direct + indirect, T_SWEEP);
        assert_eq!(
            h.node.members.get(&target).map(|m| m.state),
            Some(SwimState::Suspect)
        );
        // Unrefuted for suspect_timeout: confirmed dead + dead-listed.
        let _ = h.timer(20 * SECS, T_SWEEP);
        assert!(!h.node.members.contains_key(&target));
        assert!(h.node.dead.contains_key(&target));
    }

    #[test]
    fn suspicion_of_self_re_incarnates() {
        let mut h = Harness::new(1, SwimConfig::default());
        let inc0 = h.node.incarnation;
        let ping = Message::SwimPing(SwimPing {
            from: NodeId(2),
            seq: 1,
            updates: vec![
                alive(2, 1),
                SwimUpdate {
                    state: SwimState::Suspect,
                    record: NodeRecord::new(NodeId(1), inc0),
                },
            ],
        });
        let _ = h.packet(SECS, 2, ping);
        assert_eq!(h.node.incarnation, inc0 + 1, "refutes by re-incarnating");
        // The refutation is queued for dissemination.
        assert!(h.node.queue.iter().any(|q| {
            q.update.record.node == NodeId(1)
                && q.update.state == SwimState::Alive
                && q.update.record.incarnation == inc0 + 1
        }));
    }

    #[test]
    fn higher_incarnation_alive_refutes_suspicion() {
        let mut h = Harness::new(1, SwimConfig::default());
        let _ = h.packet(
            SECS,
            2,
            Message::SwimPing(SwimPing {
                from: NodeId(2),
                seq: 1,
                updates: vec![alive(2, 1), alive(3, 1)],
            }),
        );
        // Suspect 3 via a relayed update.
        let _ = h.packet(
            2 * SECS,
            2,
            Message::SwimPing(SwimPing {
                from: NodeId(2),
                seq: 2,
                updates: vec![SwimUpdate {
                    state: SwimState::Suspect,
                    record: NodeRecord::new(NodeId(3), 1),
                }],
            }),
        );
        assert_eq!(
            h.node.members.get(&NodeId(3)).map(|m| m.state),
            Some(SwimState::Suspect)
        );
        // Alive at the same incarnation does NOT clear it...
        let _ = h.packet(
            3 * SECS,
            2,
            Message::SwimPing(SwimPing {
                from: NodeId(2),
                seq: 3,
                updates: vec![alive(3, 1)],
            }),
        );
        assert_eq!(
            h.node.members.get(&NodeId(3)).map(|m| m.state),
            Some(SwimState::Suspect),
            "same-incarnation alive loses to suspect on the lattice"
        );
        // ...but the subject's own re-incarnation does.
        let _ = h.packet(
            4 * SECS,
            2,
            Message::SwimPing(SwimPing {
                from: NodeId(2),
                seq: 4,
                updates: vec![alive(3, 2)],
            }),
        );
        assert_eq!(
            h.node.members.get(&NodeId(3)).map(|m| m.state),
            Some(SwimState::Alive)
        );
    }

    #[test]
    fn confirm_tombstones_until_higher_incarnation() {
        let mut h = Harness::new(1, SwimConfig::default());
        let _ = h.packet(
            SECS,
            2,
            Message::SwimPing(SwimPing {
                from: NodeId(2),
                seq: 1,
                updates: vec![alive(2, 1), alive(3, 1)],
            }),
        );
        let _ = h.packet(
            2 * SECS,
            2,
            Message::SwimPing(SwimPing {
                from: NodeId(2),
                seq: 2,
                updates: vec![SwimUpdate {
                    state: SwimState::Confirm,
                    record: NodeRecord::new(NodeId(3), 1),
                }],
            }),
        );
        assert!(!h.node.members.contains_key(&NodeId(3)));
        assert!(h.node.dead.contains_key(&NodeId(3)));
        // Stale alive at the confirmed incarnation bounces off.
        let _ = h.packet(
            3 * SECS,
            2,
            Message::SwimPing(SwimPing {
                from: NodeId(2),
                seq: 3,
                updates: vec![alive(3, 1)],
            }),
        );
        assert!(!h.node.members.contains_key(&NodeId(3)));
        // A rebirth at a higher incarnation resurrects.
        let _ = h.packet(
            4 * SECS,
            2,
            Message::SwimPing(SwimPing {
                from: NodeId(2),
                seq: 4,
                updates: vec![alive(3, 2)],
            }),
        );
        assert!(h.node.members.contains_key(&NodeId(3)));
        assert!(!h.node.dead.contains_key(&NodeId(3)));
    }

    #[test]
    fn ping_req_proxies_and_forwards_the_ack() {
        let mut h = Harness::new(2, SwimConfig::default());
        let _ = h.packet(
            SECS,
            1,
            Message::SwimPing(SwimPing {
                from: NodeId(1),
                seq: 1,
                updates: vec![alive(1, 1), alive(3, 1)],
            }),
        );
        // Node 1 asks us to probe node 3.
        let fx = h.packet(
            2 * SECS,
            1,
            Message::SwimPingReq(SwimPingReq {
                from: NodeId(1),
                target: NodeId(3),
                seq: 77,
                updates: vec![],
            }),
        );
        let s = sends(&fx);
        let (dest, Message::SwimPing(proxy)) = s[s.len() - 1] else {
            panic!("expected proxy ping");
        };
        assert_eq!(dest, &Destination::Unicast(HostId(3)));
        // Node 3 acks our proxy ping; we forward under the original seq.
        let fx = h.packet(
            2 * SECS + 1,
            3,
            Message::SwimAck(SwimAck {
                from: NodeId(3),
                subject: NodeId(3),
                seq: proxy.seq,
                updates: vec![alive(3, 1)],
                sync: vec![],
            }),
        );
        let s = sends(&fx);
        assert_eq!(s.len(), 1);
        let (dest, Message::SwimAck(fwd)) = s[0] else {
            panic!("expected forwarded ack");
        };
        assert_eq!(dest, &Destination::Unicast(HostId(1)));
        assert_eq!((fwd.subject, fwd.seq), (NodeId(3), 77));
    }

    #[test]
    fn dissemination_budget_caps_retransmissions() {
        let mut h = Harness::new(1, SwimConfig::default());
        let _ = h.packet(
            SECS,
            2,
            Message::SwimPing(SwimPing {
                from: NodeId(2),
                seq: 1,
                updates: vec![alive(2, 1), alive(3, 1)],
            }),
        );
        let budget = h.node.budget();
        assert!(budget >= 3, "λ=3 × ⌈log₂(n+1)⌉ ≥ 3");
        // Each select spends one unit per queued update; the queue
        // eventually dries up.
        let mut carried = 0;
        for _ in 0..(budget + 2) {
            let upds = h.node.select_updates();
            carried += upds.len() - 1; // minus the always-on self record
        }
        assert!(h.node.queue.is_empty(), "budget exhausted");
        assert!(carried > 0);
    }
}
