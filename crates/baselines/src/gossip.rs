//! Gossip-style membership à la van Renesse, Minsky & Hayden
//! (Middleware '98) — the paper's second baseline.
//!
//! Every node keeps a heartbeat counter per member. Once per period it
//! increments its own counter and sends its **entire membership view**
//! (records + counters, Θ(n·s) bytes) to `fanout` random peers, who merge
//! by taking the per-member maximum. A member whose counter has not
//! advanced for `T_fail` is declared failed; it stays blacklisted for
//! another `T_cleanup` so stale gossip cannot resurrect it.
//!
//! `T_fail` grows with `log n` for a fixed mistake probability — which is
//! exactly why the paper finds gossip the slowest of the three schemes on
//! a LAN (Figs. 12–13) while its per-round traffic is the largest
//! (Fig. 11).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use tamp_directory::{DirectoryClient, Provenance, SharedDirectory};
use tamp_netsim::{Actor, Context, Nanos, PacketMeta, ProtocolEvent, SECS};
use tamp_wire::{Gossip, GossipEntry, Message, NodeId, NodeRecord, ServiceDecl};

/// Tunables for one gossip node.
#[derive(Debug, Clone)]
pub struct GossipConfig {
    /// Gossip round period.
    pub period: Nanos,
    /// Random peers contacted per round.
    pub fanout: usize,
    /// Mistake (false failure declaration) probability bound; `T_fail`
    /// is derived from it and the expected cluster size.
    pub mistake_probability: f64,
    /// Expected cluster size, used to size `T_fail` (gossip deployments
    /// configure this; detection time scales with `log n`).
    pub expected_cluster_size: usize,
    /// The address book: node ids this node may gossip with before it
    /// has learned the membership (the seed list every gossip deployment
    /// ships with).
    pub seeds: Vec<NodeId>,
    /// First-round phase jitter.
    pub startup_jitter: Nanos,
    /// Sweep granularity.
    pub sweep_period: Nanos,
    /// Services to export.
    pub services: Vec<ServiceDecl>,
    /// Pad this node's record so one gossip entry costs the same bytes
    /// as one heartbeat in the other schemes (228 B in the paper).
    pub pad_entry_to: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            period: SECS,
            fanout: 1,
            mistake_probability: 0.001,
            expected_cluster_size: 100,
            seeds: Vec::new(),
            startup_jitter: 500_000_000,
            sweep_period: 100_000_000,
            services: Vec::new(),
            pad_entry_to: 228,
        }
    }
}

impl GossipConfig {
    /// Failure timeout: `T_fail = period × (log2 n + log2(1/P_mistake)/2)`.
    ///
    /// The first term is the expected O(log n) rounds for a counter to
    /// propagate everywhere with fanout ≥ 1; the second adds safety
    /// margin so the probability that a live node's counter is simply
    /// late stays below `mistake_probability` (van Renesse et al., §3).
    pub fn t_fail(&self) -> Nanos {
        let n = self.expected_cluster_size.max(2) as f64;
        let rounds = n.log2() + (1.0 / self.mistake_probability).log2() / 2.0;
        (self.period as f64 * rounds) as Nanos
    }

    /// Blacklist duration after a failure declaration (classic 2×T_fail).
    pub fn t_cleanup(&self) -> Nanos {
        2 * self.t_fail()
    }
}

const T_ROUND: u64 = 1;
const T_SWEEP: u64 = 2;

struct MemberState {
    counter: u64,
    last_increase: Nanos,
}

/// One node of the gossip baseline.
pub struct GossipNode {
    cfg: GossipConfig,
    me: NodeId,
    incarnation: u64,
    crashed: bool,
    record: NodeRecord,
    my_counter: u64,
    /// When the last gossip message arrived. Failure staleness is
    /// measured against this, not against `now`: while nothing at all is
    /// arriving, the silence is evidence of *our* starvation (fanout-1
    /// inbound gaps, isolation), not of every member's death — declaring
    /// on wall-clock time lets one quiet stretch mass-remove the whole
    /// live view.
    last_rx: Nanos,
    members: HashMap<NodeId, MemberState>,
    /// Failed members and when they may be forgotten.
    blacklist: HashMap<NodeId, Nanos>,
    directory: SharedDirectory,
    member_count: Arc<Mutex<usize>>,
}

impl GossipNode {
    pub fn new(me: NodeId, cfg: GossipConfig) -> Self {
        let mut n = GossipNode {
            record: NodeRecord::new(me, 0),
            me,
            incarnation: 0,
            crashed: false,
            my_counter: 0,
            last_rx: 0,
            members: HashMap::new(),
            blacklist: HashMap::new(),
            directory: SharedDirectory::new(),
            member_count: Arc::new(Mutex::new(0)),
            cfg,
        };
        n.rebuild_record();
        n
    }

    pub fn directory_client(&self) -> DirectoryClient {
        self.directory.client()
    }

    pub fn member_count_probe(&self) -> Arc<Mutex<usize>> {
        Arc::clone(&self.member_count)
    }

    fn rebuild_record(&mut self) {
        let mut r = NodeRecord::new(self.me, self.incarnation);
        r.services = self.cfg.services.clone();
        if self.cfg.pad_entry_to > 0 {
            r.pad_to_encoded_size(self.cfg.pad_entry_to);
        }
        self.record = r;
    }

    fn refresh_probe(&self) {
        *self.member_count.lock() = self.directory.read(|d| d.len());
    }

    /// Build the full view this node would gossip.
    fn view(&self) -> Vec<GossipEntry> {
        let mut entries: Vec<GossipEntry> = self.directory.read(|d| {
            d.entries()
                .filter(|e| e.record.node != self.me)
                .map(|e| GossipEntry {
                    record: e.record.clone(),
                    heartbeat_counter: self.members.get(&e.record.node).map_or(0, |m| m.counter),
                })
                .collect()
        });
        entries.push(GossipEntry {
            record: self.record.clone(),
            heartbeat_counter: self.my_counter,
        });
        entries.sort_by_key(|e| e.record.node);
        entries
    }

    /// Pick `fanout` random gossip targets among known live members and
    /// seeds.
    fn targets(&self, ctx: &mut Context) -> Vec<NodeId> {
        let mut candidates: Vec<NodeId> = self
            .members
            .keys()
            .copied()
            .chain(self.cfg.seeds.iter().copied())
            .filter(|&n| n != self.me && !self.blacklist.contains_key(&n))
            .collect();
        candidates.sort();
        candidates.dedup();
        let mut out = Vec::new();
        for _ in 0..self.cfg.fanout.min(candidates.len()) {
            let i = ctx.rand_below(candidates.len() as u64) as usize;
            out.push(candidates.swap_remove(i));
        }
        out
    }
}

impl Actor for GossipNode {
    fn on_start(&mut self, ctx: &mut Context) {
        if self.crashed {
            self.crashed = false;
            self.members.clear();
            self.blacklist.clear();
            self.my_counter = 0;
            self.last_rx = 0;
            self.directory.update(|d| {
                *d = tamp_directory::Directory::new();
                (true, ())
            });
        }
        self.incarnation += 1;
        self.rebuild_record();
        let rec = self.record.clone();
        let now = ctx.now();
        self.directory
            .update(|d| (d.apply_join(rec, Provenance::Local, now).changed(), ()));
        let phase = ctx.jitter(self.cfg.startup_jitter);
        ctx.set_timer(phase + self.cfg.period, T_ROUND);
        ctx.set_timer(self.cfg.sweep_period, T_SWEEP);
        self.refresh_probe();
    }

    fn on_crash(&mut self) {
        self.crashed = true;
        self.directory.update(|d| {
            *d = tamp_directory::Directory::new();
            (true, ())
        });
    }

    fn on_packet(&mut self, ctx: &mut Context, _meta: PacketMeta, msg: &Message) {
        let Message::Gossip(g) = msg else { return };
        if g.from == self.me {
            return;
        }
        let now = ctx.now();
        self.last_rx = now;
        for e in &g.entries {
            let node = e.record.node;
            if node == self.me {
                continue;
            }
            // The blacklist wins over stale counters, but a *higher
            // incarnation* means a genuine restart: let it through.
            if let Some(&until) = self.blacklist.get(&node) {
                let known_inc = self
                    .directory
                    .read(|d| d.get(node).map(|e| e.record.incarnation));
                let restarted = known_inc.is_none_or(|inc| e.record.incarnation > inc);
                if now < until && !restarted {
                    continue;
                }
                if restarted && now < until {
                    // A higher incarnation overrode an active blacklist
                    // entry: the presumed death was refuted by a genuine
                    // restart — gossip's analogue of a refutation.
                    ctx.count("gossip", "suspicions_refuted", 1);
                    ctx.emit(ProtocolEvent::SuspicionRefuted { subject: node.0 });
                }
                self.blacklist.remove(&node);
            }
            let m = self.members.entry(node).or_insert(MemberState {
                counter: 0,
                last_increase: now,
            });
            if e.heartbeat_counter > m.counter || !self.directory.read(|d| d.contains(node)) {
                if e.heartbeat_counter > m.counter {
                    m.counter = e.heartbeat_counter;
                    m.last_increase = now;
                }
                let (was, applied) = self.directory.update(|d| {
                    let was = d.contains(node);
                    let a = d.apply_join(e.record.clone(), Provenance::Direct, now);
                    (a.changed(), (was, a))
                });
                if applied.changed() && !was {
                    ctx.observe_added(node);
                }
            }
        }
        self.refresh_probe();
    }

    fn on_timer(&mut self, ctx: &mut Context, token: u64) {
        match token {
            T_ROUND => {
                self.my_counter += 1;
                let entries = self.view();
                for t in self.targets(ctx) {
                    ctx.count("gossip", "rounds_sent", 1);
                    ctx.send_unicast(
                        t,
                        Message::Gossip(Gossip {
                            from: self.me,
                            entries: entries.clone(),
                        }),
                    );
                }
                ctx.set_timer(self.cfg.period, T_ROUND);
            }
            T_SWEEP => {
                let now = ctx.now();
                let t_fail = self.cfg.t_fail();
                let t_cleanup = self.cfg.t_cleanup();
                // Staleness is `last_rx − last_increase`: how much
                // *received* information failed to advance the member's
                // counter. Using `now` here would convict every member
                // during an inbound-starvation gap.
                let failed: Vec<NodeId> = self
                    .members
                    .iter()
                    .filter(|(_, m)| self.last_rx.saturating_sub(m.last_increase) >= t_fail)
                    .map(|(&n, _)| n)
                    .collect();
                for n in failed {
                    self.members.remove(&n);
                    self.blacklist.insert(n, now + t_cleanup);
                    let inc = self
                        .directory
                        .read(|d| d.get(n).map(|e| e.record.incarnation));
                    if let Some(inc) = inc {
                        self.directory
                            .update(|d| (d.apply_leave(n, inc, now).changed(), ()));
                        ctx.count("gossip", "deaths_declared", 1);
                        ctx.observe_removed(n);
                    }
                }
                self.blacklist.retain(|_, &mut until| now < until);
                ctx.set_timer(self.cfg.sweep_period, T_SWEEP);
                self.refresh_probe();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_fail_grows_logarithmically() {
        let mk = |n| GossipConfig {
            expected_cluster_size: n,
            ..Default::default()
        };
        let t20 = mk(20).t_fail();
        let t100 = mk(100).t_fail();
        let t1000 = mk(1000).t_fail();
        assert!(t20 < t100 && t100 < t1000);
        // Doubling n adds exactly one period.
        let t40 = mk(40).t_fail();
        assert_eq!(t40 - t20, SECS);
        // Roughly: 20 nodes → ~9.3 periods, 100 → ~11.6.
        assert!((9 * SECS..10 * SECS).contains(&t20), "{t20}");
        assert!((11 * SECS..13 * SECS).contains(&t100), "{t100}");
    }

    #[test]
    fn cleanup_is_twice_fail() {
        let cfg = GossipConfig::default();
        assert_eq!(cfg.t_cleanup(), 2 * cfg.t_fail());
    }

    #[test]
    fn view_contains_self_with_counter() {
        let mut n = GossipNode::new(NodeId(3), GossipConfig::default());
        n.my_counter = 7;
        // Before start, directory is empty — the view still carries self.
        let v = n.view();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].record.node, NodeId(3));
        assert_eq!(v[0].heartbeat_counter, 7);
    }

    #[test]
    fn gossip_message_size_matches_paper_model() {
        // One entry ≈ one 228-byte heartbeat record (+ counter): a full
        // view of n members costs ≈ n × s bytes, the paper's Θ(n·s).
        let mut node = GossipNode::new(NodeId(1), GossipConfig::default());
        node.my_counter = 1;
        let msg = Message::Gossip(Gossip {
            from: NodeId(1),
            entries: node.view(),
        });
        let one = tamp_wire::codec::encoded_len(&msg);
        assert!((200..300).contains(&one), "single-entry gossip: {one}");
    }
}
