//! The all-to-all multicast heartbeat protocol (paper §2).
//!
//! "One straightforward approach … is to let every node periodically send
//! its heartbeats to other nodes and collect heartbeats from other nodes.
//! … Every node builds its own membership directory based on these
//! heartbeat packets. … The advantage of this approach is that each node
//! functions independently and it provides the best fault isolation.
//! Unfortunately, this simple scheme is not scalable."

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use tamp_directory::{DirectoryClient, Provenance, SharedDirectory};
use tamp_netsim::{Actor, ChannelId, Context, Nanos, PacketMeta, SECS};
use tamp_wire::{Heartbeat, Message, NodeId, NodeRecord, ServiceDecl};

/// Tunables for one all-to-all node.
#[derive(Debug, Clone)]
pub struct AllToAllConfig {
    /// The single cluster-wide multicast channel.
    pub channel: ChannelId,
    /// TTL that reaches the whole cluster.
    pub ttl: u8,
    /// Heartbeat period (the paper fixes 1 Hz).
    pub heartbeat_period: Nanos,
    /// Missed heartbeats tolerated before declaring a node dead.
    pub max_loss: u32,
    /// First-heartbeat phase jitter.
    pub startup_jitter: Nanos,
    /// Timeout-check granularity.
    pub sweep_period: Nanos,
    /// Services to export.
    pub services: Vec<ServiceDecl>,
    /// Pad heartbeats to this encoded size (0 = no padding). The paper
    /// measures 228-byte heartbeats; its Fig. 2 bandwidth plot uses
    /// 1024-byte packets.
    pub pad_heartbeat_to: usize,
}

impl Default for AllToAllConfig {
    fn default() -> Self {
        AllToAllConfig {
            channel: ChannelId(0),
            ttl: 8,
            heartbeat_period: SECS,
            max_loss: 5,
            startup_jitter: 500_000_000,
            sweep_period: 100_000_000,
            services: Vec::new(),
            pad_heartbeat_to: 228,
        }
    }
}

const T_HEARTBEAT: u64 = 1;
const T_SWEEP: u64 = 2;

/// One node of the all-to-all baseline.
pub struct AllToAllNode {
    cfg: AllToAllConfig,
    me: NodeId,
    incarnation: u64,
    crashed: bool,
    record: NodeRecord,
    seq: u64,
    directory: SharedDirectory,
    last_heard: HashMap<NodeId, Nanos>,
    member_count: Arc<Mutex<usize>>,
}

impl AllToAllNode {
    pub fn new(me: NodeId, cfg: AllToAllConfig) -> Self {
        let mut n = AllToAllNode {
            record: NodeRecord::new(me, 0),
            me,
            incarnation: 0,
            crashed: false,
            seq: 0,
            directory: SharedDirectory::new(),
            last_heard: HashMap::new(),
            member_count: Arc::new(Mutex::new(0)),
            cfg,
        };
        n.rebuild_record();
        n
    }

    /// Yellow-page read handle.
    pub fn directory_client(&self) -> DirectoryClient {
        self.directory.client()
    }

    /// Cheap member-count probe for tests/harness.
    pub fn member_count_probe(&self) -> Arc<Mutex<usize>> {
        Arc::clone(&self.member_count)
    }

    fn rebuild_record(&mut self) {
        let mut r = NodeRecord::new(self.me, self.incarnation);
        r.services = self.cfg.services.clone();
        if self.cfg.pad_heartbeat_to > 0 {
            r.pad_to_encoded_size(self.cfg.pad_heartbeat_to);
        }
        self.record = r;
    }

    fn timeout(&self) -> Nanos {
        self.cfg.max_loss as u64 * self.cfg.heartbeat_period
    }

    fn refresh_probe(&self) {
        *self.member_count.lock() = self.directory.read(|d| d.len());
    }
}

impl Actor for AllToAllNode {
    fn on_start(&mut self, ctx: &mut Context) {
        if self.crashed {
            self.crashed = false;
            self.last_heard.clear();
            self.seq = 0;
            self.directory.update(|d| {
                *d = tamp_directory::Directory::new();
                (true, ())
            });
        }
        self.incarnation += 1;
        self.rebuild_record();
        let rec = self.record.clone();
        let now = ctx.now();
        self.directory
            .update(|d| (d.apply_join(rec, Provenance::Local, now).changed(), ()));
        ctx.subscribe(self.cfg.channel);
        let phase = ctx.jitter(self.cfg.startup_jitter);
        ctx.set_timer(phase + self.cfg.heartbeat_period, T_HEARTBEAT);
        ctx.set_timer(self.cfg.sweep_period, T_SWEEP);
        self.refresh_probe();
    }

    fn on_crash(&mut self) {
        self.crashed = true;
        self.directory.update(|d| {
            *d = tamp_directory::Directory::new();
            (true, ())
        });
    }

    fn on_packet(&mut self, ctx: &mut Context, _meta: PacketMeta, msg: &Message) {
        let Message::Heartbeat(hb) = msg else { return };
        if hb.from == self.me {
            return;
        }
        let now = ctx.now();
        self.last_heard.insert(hb.from, now);
        let (was, applied) = self.directory.update(|d| {
            let was = d.contains(hb.from);
            let a = d.apply_join(hb.record.clone(), Provenance::Direct, now);
            (a.changed(), (was, a))
        });
        if applied.changed() && !was {
            ctx.observe_added(hb.from);
        }
        self.refresh_probe();
    }

    /// Zero-copy receive: the protocol is heartbeat-only, and on the
    /// steady-state refresh path (same incarnation, same content) the
    /// sender's record never gets materialized — the directory's lazy
    /// join compares through the borrowed view.
    fn on_packet_view(
        &mut self,
        ctx: &mut Context,
        _meta: PacketMeta,
        view: &tamp_wire::MessageView<'_>,
    ) {
        let Some(hb) = view.as_heartbeat() else {
            return;
        };
        if hb.from == self.me {
            return;
        }
        let now = ctx.now();
        self.last_heard.insert(hb.from, now);
        let (was, applied) = self.directory.update(|d| {
            let was = d.contains(hb.from);
            let a = d.apply_join_with(
                hb.record.node,
                hb.record.incarnation,
                Provenance::Direct,
                now,
                || hb.record.to_record(),
                |e| hb.record.matches(e),
            );
            (a.changed(), (was, a))
        });
        if applied.changed() && !was {
            ctx.observe_added(hb.from);
        }
        self.refresh_probe();
    }

    fn on_timer(&mut self, ctx: &mut Context, token: u64) {
        match token {
            T_HEARTBEAT => {
                self.seq += 1;
                ctx.count("alltoall", "heartbeats_sent", 1);
                ctx.send_multicast(
                    self.cfg.channel,
                    self.cfg.ttl,
                    Message::Heartbeat(Heartbeat {
                        from: self.me,
                        level: 0,
                        seq: self.seq,
                        is_leader: false,
                        backup: None,
                        latest_update_seq: 0,
                        record: self.record.clone(),
                    }),
                );
                ctx.set_timer(self.cfg.heartbeat_period, T_HEARTBEAT);
            }
            T_SWEEP => {
                let now = ctx.now();
                let timeout = self.timeout();
                let dead: Vec<NodeId> = self
                    .last_heard
                    .iter()
                    .filter(|(_, &t)| now.saturating_sub(t) >= timeout)
                    .map(|(&n, _)| n)
                    .collect();
                for n in dead {
                    self.last_heard.remove(&n);
                    let inc = self
                        .directory
                        .read(|d| d.get(n).map(|e| e.record.incarnation));
                    if let Some(inc) = inc {
                        self.directory
                            .update(|d| (d.apply_leave(n, inc, now).changed(), ()));
                        ctx.count("alltoall", "deaths_declared", 1);
                        ctx.observe_removed(n);
                    }
                }
                ctx.set_timer(self.cfg.sweep_period, T_SWEEP);
                self.refresh_probe();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_padded_to_configured_size() {
        let node = AllToAllNode::new(NodeId(1), AllToAllConfig::default());
        let msg = Message::Heartbeat(Heartbeat {
            from: node.me,
            level: 0,
            seq: 0,
            is_leader: false,
            backup: None,
            latest_update_seq: 0,
            record: node.record.clone(),
        });
        assert_eq!(tamp_wire::codec::encoded_len(&msg), 228);
    }

    #[test]
    fn timeout_is_max_loss_periods() {
        let node = AllToAllNode::new(NodeId(1), AllToAllConfig::default());
        assert_eq!(node.timeout(), 5 * SECS);
    }
}
