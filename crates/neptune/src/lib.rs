//! # tamp-neptune — clustering middleware substrate (paper §2)
//!
//! A minimal reconstruction of the parts of the Neptune framework the
//! membership service plugs into: **service providers** that register
//! `(service, partition)` instances and process requests, and **consumer
//! gateways** that route each request to an appropriate instance using
//! the yellow pages — location-transparent invocation, failure shielding
//! via the membership directory, and random-polling load balancing \[20\].
//!
//! The prototype search engine of the paper's Fig. 1 / Fig. 14 is built
//! from these pieces in [`search`]: protocol gateways call partitioned,
//! replicated index servers and document servers; when the local document
//! service fails, requests fail over to a remote data center through the
//! membership proxies (`tamp-proxy`).

mod gateway;
mod provider;
pub mod search;

pub use gateway::{
    GatewayConfig, GatewayMetrics, GatewayNode, LoadBalance, MetricsHandle, Step, StepMode,
    Workflow,
};
pub use provider::{ProviderConfig, ProviderNode, POLL_PAYLOAD};
