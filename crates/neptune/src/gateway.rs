//! Consumer gateway: the Neptune consumer module.
//!
//! A gateway turns each incoming user query into a multi-step workflow
//! over internal services (paper Fig. 1: contact an index partition,
//! then the document partitions). Each step is routed with the yellow
//! pages: pick an instance per partition, balance load by random polling
//! \[20\], shield failures by retrying on another replica, and — when no
//! local instance exists — fail over to a remote data center through the
//! membership proxies (paper Fig. 6).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use tamp_membership::{MembershipConfig, MembershipNode};
use tamp_netsim::{Actor, Context, Nanos, PacketMeta, MILLIS};
use tamp_proxy::PROXY_SERVICE;
use tamp_wire::{Message, NodeId, ServiceRequest, ServiceResponse};

use crate::provider::POLL_PAYLOAD;

/// How a step addresses its service's partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepMode {
    /// Contact one randomly chosen partition (e.g. a cache shard).
    PickOne,
    /// Contact every partition in parallel and wait for all of them —
    /// the paper's Fig. 1 document-retrieval flow, where the gateway
    /// "contacts the document server partitions" (plural).
    AllPartitions,
}

/// One workflow step: call `service` on one or all of its
/// `partition_count` partitions.
#[derive(Debug, Clone)]
pub struct Step {
    pub service: String,
    pub partition_count: u16,
    pub payload_size: usize,
    pub mode: StepMode,
}

impl Step {
    /// A pick-one-partition step.
    pub fn new(service: impl Into<String>, partition_count: u16) -> Self {
        Step {
            service: service.into(),
            partition_count,
            payload_size: 96,
            mode: StepMode::PickOne,
        }
    }

    /// A fan-out step contacting every partition in parallel.
    pub fn fanout(service: impl Into<String>, partition_count: u16) -> Self {
        Step {
            mode: StepMode::AllPartitions,
            ..Step::new(service, partition_count)
        }
    }
}

/// An ordered list of steps executed per query.
#[derive(Debug, Clone, Default)]
pub struct Workflow {
    pub steps: Vec<Step>,
}

impl Workflow {
    /// The paper's search engine, simplified: one index lookup, one
    /// document retrieval (Fig. 1 steps 2–3).
    pub fn search_engine() -> Self {
        Workflow {
            steps: vec![Step::new("index", 2), Step::new("doc", 3)],
        }
    }

    /// The paper's search engine with full document fan-out: the gateway
    /// queries one index partition, then *all three* document partitions
    /// in parallel (Fig. 1 exactly).
    pub fn search_engine_fanout() -> Self {
        Workflow {
            steps: vec![Step::new("index", 2), Step::fanout("doc", 3)],
        }
    }
}

/// Instance selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBalance {
    /// Uniform random replica choice.
    Random,
    /// Random polling \[20\]: probe two random replicas for queue
    /// length, dispatch to the shorter queue.
    PollTwo,
}

/// Gateway tunables.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    pub membership: MembershipConfig,
    pub workflow: Workflow,
    /// Open-loop query inter-arrival time (0 disables generation; use
    /// [`GatewayNode`] handles to drive manually in tests).
    pub arrival_period: Nanos,
    /// Per-attempt timeout against a local instance.
    pub request_timeout: Nanos,
    /// Timeout for a proxied (remote DC) attempt.
    pub proxy_timeout: Nanos,
    /// Local replica attempts before falling back to the proxies.
    pub max_local_attempts: u32,
    pub lb: LoadBalance,
    /// How long to wait for poll answers before dispatching anyway.
    pub poll_timeout: Nanos,
}

impl GatewayConfig {
    pub fn new(membership: MembershipConfig, workflow: Workflow, arrival_period: Nanos) -> Self {
        GatewayConfig {
            membership,
            workflow,
            arrival_period,
            request_timeout: 500 * MILLIS,
            proxy_timeout: 2_000 * MILLIS,
            max_local_attempts: 2,
            lb: LoadBalance::Random,
            poll_timeout: 50 * MILLIS,
        }
    }
}

/// What the gateway measured; read it from the harness via
/// [`GatewayNode::metrics`].
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    pub issued: u64,
    /// `(completion_time, latency)` per successful query.
    pub completed: Vec<(Nanos, Nanos)>,
    /// Completion times of failed queries.
    pub failed: Vec<Nanos>,
    /// Successful queries that needed a remote data center.
    pub remote_served: u64,
}

impl GatewayMetrics {
    /// Mean latency of queries completing within `[from, to)`.
    pub fn mean_latency_in(&self, from: Nanos, to: Nanos) -> Option<Nanos> {
        let window: Vec<Nanos> = self
            .completed
            .iter()
            .filter(|(t, _)| (from..to).contains(t))
            .map(|&(_, l)| l)
            .collect();
        if window.is_empty() {
            None
        } else {
            Some(window.iter().sum::<Nanos>() / window.len() as u64)
        }
    }

    /// Completed-query count within `[from, to)`.
    pub fn throughput_in(&self, from: Nanos, to: Nanos) -> usize {
        self.completed
            .iter()
            .filter(|(t, _)| (from..to).contains(t))
            .count()
    }
}

pub type MetricsHandle = Arc<Mutex<GatewayMetrics>>;

const T_ARRIVE: u64 = 6 << 32;
const T_TIMEOUT: u64 = 7 << 32;
const GW_TOKEN_MASK: u64 = !0u64 << 32;

#[derive(Debug)]
enum Phase {
    /// Poll probes outstanding; collecting queue lengths.
    Polling {
        outstanding: u32,
        best: Option<(NodeId, u32)>,
    },
    /// Real request outstanding.
    Waiting,
    /// This sub-query already succeeded.
    Done,
}

/// One partition's progress within the current step.
#[derive(Debug)]
struct SubQuery {
    partition: u16,
    attempts: u32,
    tried: Vec<NodeId>,
    used_proxy: bool,
    phase: Phase,
}

#[derive(Debug)]
struct Query {
    started: Nanos,
    step: usize,
    subs: Vec<SubQuery>,
    /// Did any sub-query of any step go through the proxies?
    used_proxy: bool,
    /// Request sequence numbers still owned by this query.
    live_reqs: Vec<u32>,
}

/// A protocol-gateway node: generates queries and routes workflow steps.
pub struct GatewayNode {
    cfg: GatewayConfig,
    me: NodeId,
    inner: MembershipNode,
    metrics: MetricsHandle,
    queries: HashMap<u64, Query>,
    next_query: u64,
    next_req: u32,
    /// Request seq → (owning query, sub-query index).
    inflight: HashMap<u32, (u64, usize)>,
    /// One-way latch: set once the directory first listed every workflow
    /// service+partition. Later *failures* must not re-gate arrivals —
    /// that is exactly when proxy failover earns its keep.
    warmed: bool,
    crashed: bool,
}

impl GatewayNode {
    pub fn new(me: NodeId, cfg: GatewayConfig) -> Self {
        let inner = MembershipNode::new(me, cfg.membership.clone());
        GatewayNode {
            me,
            inner,
            metrics: Arc::new(Mutex::new(GatewayMetrics::default())),
            queries: HashMap::new(),
            next_query: 0,
            next_req: 0,
            inflight: HashMap::new(),
            warmed: false,
            crashed: false,
            cfg,
        }
    }

    pub fn directory_client(&self) -> tamp_directory::DirectoryClient {
        self.inner.directory_client()
    }

    /// Handle to the measurements (shared; clone before boxing).
    pub fn metrics(&self) -> MetricsHandle {
        Arc::clone(&self.metrics)
    }

    fn new_req_id(&mut self) -> (u32, u64) {
        self.next_req += 1;
        let seq = self.next_req;
        (seq, ((self.me.0 as u64) << 32) | seq as u64)
    }

    /// True once the directory lists at least one instance for every
    /// (service, partition) a query could touch.
    fn warmed_up(&mut self) -> bool {
        if self.warmed {
            return true;
        }
        let client = self.inner.directory_client();
        self.warmed = self
            .cfg
            .workflow
            .steps
            .iter()
            .all(|s| (0..s.partition_count).all(|p| !client.resolve(&s.service, p).is_empty()));
        self.warmed
    }

    fn start_query(&mut self, ctx: &mut Context) {
        self.next_query += 1;
        let qid = self.next_query;
        self.metrics.lock().issued += 1;
        self.queries.insert(
            qid,
            Query {
                started: ctx.now(),
                step: 0,
                subs: Vec::new(),
                used_proxy: false,
                live_reqs: Vec::new(),
            },
        );
        self.begin_step(ctx, qid);
    }

    fn begin_step(&mut self, ctx: &mut Context, qid: u64) {
        let Some(q) = self.queries.get_mut(&qid) else {
            return;
        };
        let step = self.cfg.workflow.steps[q.step].clone();
        q.subs = match step.mode {
            StepMode::PickOne => {
                let p = ctx.rand_below(step.partition_count as u64) as u16;
                vec![SubQuery {
                    partition: p,
                    attempts: 0,
                    tried: Vec::new(),
                    used_proxy: false,
                    phase: Phase::Waiting,
                }]
            }
            StepMode::AllPartitions => (0..step.partition_count)
                .map(|p| SubQuery {
                    partition: p,
                    attempts: 0,
                    tried: Vec::new(),
                    used_proxy: false,
                    phase: Phase::Waiting,
                })
                .collect(),
        };
        let n_subs = self.queries[&qid].subs.len();
        for sub in 0..n_subs {
            self.dispatch(ctx, qid, sub);
        }
    }

    /// Route one sub-query: local replica, proxy fallback, or fail the
    /// whole query.
    fn dispatch(&mut self, ctx: &mut Context, qid: u64, sub: usize) {
        let Some(q) = self.queries.get(&qid) else {
            return;
        };
        let step = self.cfg.workflow.steps[q.step].clone();
        let s = &q.subs[sub];
        let candidates: Vec<NodeId> = self
            .inner
            .directory_client()
            .resolve(&step.service, s.partition)
            .into_iter()
            .filter(|n| !s.tried.contains(n))
            .collect();

        let local_exhausted = candidates.is_empty() || s.attempts >= self.cfg.max_local_attempts;
        if !local_exhausted {
            match self.cfg.lb {
                LoadBalance::Random => {
                    let i = ctx.rand_below(candidates.len() as u64) as usize;
                    self.send_real(ctx, qid, sub, candidates[i], &step);
                }
                LoadBalance::PollTwo => {
                    if candidates.len() == 1 {
                        self.send_real(ctx, qid, sub, candidates[0], &step);
                    } else {
                        self.send_polls(ctx, qid, sub, &candidates);
                    }
                }
            }
            return;
        }

        // Proxy fallback (Fig. 6 step 1): ask a local membership proxy.
        let q = self.queries.get(&qid).unwrap();
        if !q.subs[sub].used_proxy {
            let proxies: Vec<NodeId> = self
                .inner
                .directory_client()
                .lookup_service(PROXY_SERVICE, "")
                .unwrap_or_default()
                .into_iter()
                .map(|m| m.node)
                .collect();
            if !proxies.is_empty() {
                let i = ctx.rand_below(proxies.len() as u64) as usize;
                let proxy = proxies[i];
                let (seq, id) = self.new_req_id();
                let q = self.queries.get_mut(&qid).unwrap();
                let s = &mut q.subs[sub];
                s.used_proxy = true;
                s.phase = Phase::Waiting;
                let partition = s.partition;
                q.used_proxy = true;
                q.live_reqs.push(seq);
                self.inflight.insert(seq, (qid, sub));
                ctx.send_unicast(
                    proxy,
                    Message::ServiceRequest(ServiceRequest {
                        id,
                        from: self.me,
                        service: step.service.clone(),
                        partition,
                        payload: vec![0u8; step.payload_size],
                        hops_left: 2,
                    }),
                );
                ctx.set_timer(self.cfg.proxy_timeout, T_TIMEOUT | seq as u64);
                return;
            }
        }
        self.fail_query(ctx, qid);
    }

    fn send_real(&mut self, ctx: &mut Context, qid: u64, sub: usize, target: NodeId, step: &Step) {
        let (seq, id) = self.new_req_id();
        let q = self.queries.get_mut(&qid).unwrap();
        let s = &mut q.subs[sub];
        s.attempts += 1;
        s.tried.push(target);
        s.phase = Phase::Waiting;
        let partition = s.partition;
        q.live_reqs.push(seq);
        self.inflight.insert(seq, (qid, sub));
        ctx.send_unicast(
            target,
            Message::ServiceRequest(ServiceRequest {
                id,
                from: self.me,
                service: step.service.clone(),
                partition,
                payload: vec![0u8; step.payload_size],
                hops_left: 0,
            }),
        );
        ctx.set_timer(self.cfg.request_timeout, T_TIMEOUT | seq as u64);
    }

    fn send_polls(&mut self, ctx: &mut Context, qid: u64, sub: usize, candidates: &[NodeId]) {
        // Probe two distinct random replicas.
        let mut pool = candidates.to_vec();
        let mut picks = Vec::new();
        for _ in 0..2.min(pool.len()) {
            let i = ctx.rand_below(pool.len() as u64) as usize;
            picks.push(pool.swap_remove(i));
        }
        let q = self.queries.get_mut(&qid).unwrap();
        q.subs[sub].phase = Phase::Polling {
            outstanding: picks.len() as u32,
            best: None,
        };
        for target in picks {
            let (seq, id) = self.new_req_id();
            let q = self.queries.get_mut(&qid).unwrap();
            q.live_reqs.push(seq);
            self.inflight.insert(seq, (qid, sub));
            ctx.send_unicast(
                target,
                Message::ServiceRequest(ServiceRequest {
                    id,
                    from: self.me,
                    service: String::new(),
                    partition: 0,
                    payload: POLL_PAYLOAD.to_vec(),
                    hops_left: 0,
                }),
            );
            ctx.set_timer(self.cfg.poll_timeout, T_TIMEOUT | seq as u64);
        }
    }

    fn fail_query(&mut self, ctx: &mut Context, qid: u64) {
        if let Some(q) = self.queries.remove(&qid) {
            for seq in q.live_reqs {
                self.inflight.remove(&seq);
            }
            self.metrics.lock().failed.push(ctx.now());
        }
    }

    /// One sub-query finished; advance the step / query when all have.
    fn sub_done(&mut self, ctx: &mut Context, qid: u64, sub: usize) {
        let Some(q) = self.queries.get_mut(&qid) else {
            return;
        };
        q.subs[sub].phase = Phase::Done;
        if !q.subs.iter().all(|s| matches!(s.phase, Phase::Done)) {
            return;
        }
        q.step += 1;
        if q.step >= self.cfg.workflow.steps.len() {
            let q = self.queries.remove(&qid).unwrap();
            for seq in q.live_reqs {
                self.inflight.remove(&seq);
            }
            let now = ctx.now();
            let mut m = self.metrics.lock();
            m.completed.push((now, now - q.started));
            if q.used_proxy {
                m.remote_served += 1;
            }
        } else {
            self.begin_step(ctx, qid);
        }
    }

    fn handle_response(&mut self, ctx: &mut Context, r: &ServiceResponse) {
        let seq = (r.id & 0xffff_ffff) as u32;
        let Some(&(qid, sub)) = self.inflight.get(&seq) else {
            return;
        };
        self.inflight.remove(&seq);
        let Some(q) = self.queries.get_mut(&qid) else {
            return;
        };
        q.live_reqs.retain(|&s| s != seq);

        match &mut q.subs[sub].phase {
            Phase::Polling { outstanding, best } => {
                if r.ok && r.payload.len() >= 4 {
                    let queue = u32::from_le_bytes([
                        r.payload[0],
                        r.payload[1],
                        r.payload[2],
                        r.payload[3],
                    ]);
                    if best.is_none_or(|(_, b)| queue < b) {
                        *best = Some((r.from, queue));
                    }
                }
                *outstanding -= 1;
                if *outstanding == 0 {
                    let choice = best.map(|(n, _)| n);
                    let step = self.cfg.workflow.steps[q.step].clone();
                    match choice {
                        Some(target) => self.send_real(ctx, qid, sub, target, &step),
                        None => self.dispatch(ctx, qid, sub),
                    }
                }
            }
            Phase::Waiting => {
                if r.ok {
                    self.sub_done(ctx, qid, sub);
                } else {
                    // Rejected (e.g. no remote DC offers the service):
                    // try the next option or give up.
                    self.dispatch(ctx, qid, sub);
                }
            }
            Phase::Done => {}
        }
    }

    fn handle_timeout(&mut self, ctx: &mut Context, seq: u32) {
        let Some(&(qid, sub)) = self.inflight.get(&seq) else {
            return;
        };
        self.inflight.remove(&seq);
        let Some(q) = self.queries.get_mut(&qid) else {
            return;
        };
        q.live_reqs.retain(|&s| s != seq);
        match &mut q.subs[sub].phase {
            Phase::Polling { outstanding, best } => {
                *outstanding = outstanding.saturating_sub(1);
                if *outstanding == 0 {
                    let choice = best.map(|(n, _)| n);
                    let step = self.cfg.workflow.steps[q.step].clone();
                    match choice {
                        Some(target) => self.send_real(ctx, qid, sub, target, &step),
                        None => self.dispatch(ctx, qid, sub),
                    }
                }
            }
            Phase::Waiting => {
                // The attempt died (crashed instance, lost packet):
                // retry on another replica or escalate.
                self.dispatch(ctx, qid, sub);
            }
            Phase::Done => {}
        }
    }
}

impl Actor for GatewayNode {
    fn on_start(&mut self, ctx: &mut Context) {
        if self.crashed {
            self.crashed = false;
            self.queries.clear();
            self.inflight.clear();
            self.warmed = false;
        }
        self.inner.on_start(ctx);
        if self.cfg.arrival_period > 0 {
            let phase = ctx.jitter(self.cfg.arrival_period);
            ctx.set_timer(phase + self.cfg.arrival_period, T_ARRIVE);
        }
    }

    fn on_crash(&mut self) {
        self.crashed = true;
        self.inner.on_crash();
    }

    fn on_packet(&mut self, ctx: &mut Context, meta: PacketMeta, msg: &Message) {
        match msg {
            Message::ServiceResponse(r) => self.handle_response(ctx, r),
            Message::ServiceRequest(_) => {}
            other => self.inner.on_packet(ctx, meta, other),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, token: u64) {
        if token & GW_TOKEN_MASK == 0 {
            return self.inner.on_timer(ctx, token);
        }
        match token & GW_TOKEN_MASK {
            T_ARRIVE => {
                if self.warmed_up() {
                    self.start_query(ctx);
                }
                ctx.set_timer(self.cfg.arrival_period, T_ARRIVE);
            }
            T_TIMEOUT => self.handle_timeout(ctx, (token & 0xffff_ffff) as u32),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_windows() {
        let mut m = GatewayMetrics::default();
        m.completed.push((10, 5));
        m.completed.push((20, 15));
        m.completed.push((30, 25));
        assert_eq!(m.throughput_in(0, 25), 2);
        assert_eq!(m.mean_latency_in(0, 25), Some(10));
        assert_eq!(m.mean_latency_in(100, 200), None);
    }

    #[test]
    fn search_workflow_shape() {
        let w = Workflow::search_engine();
        assert_eq!(w.steps.len(), 2);
        assert_eq!(w.steps[0].service, "index");
        assert_eq!(w.steps[0].partition_count, 2);
        assert_eq!(w.steps[1].service, "doc");
        assert_eq!(w.steps[1].partition_count, 3);
        assert_eq!(w.steps[1].mode, StepMode::PickOne);
        let wf = Workflow::search_engine_fanout();
        assert_eq!(wf.steps[1].mode, StepMode::AllPartitions);
    }

    #[test]
    fn req_ids_embed_sender() {
        let mut g = GatewayNode::new(
            NodeId(9),
            GatewayConfig::new(MembershipConfig::default(), Workflow::search_engine(), 0),
        );
        let (seq, id) = g.new_req_id();
        assert_eq!(id >> 32, 9);
        assert_eq!((id & 0xffff_ffff) as u32, seq);
    }
}
