//! The prototype search-engine deployment of paper Figs. 1 and 14: two
//! (or more) data centers hosting protocol gateways, partitioned +
//! replicated index and document services, and membership proxies.
//!
//! This module is scenario *construction* only — it wires actors into a
//! simulator engine; the harness and examples drive it.

use crate::gateway::{GatewayConfig, GatewayNode, LoadBalance, MetricsHandle, Workflow};
use crate::provider::{ProviderConfig, ProviderNode};
use tamp_membership::MembershipConfig;
use tamp_netsim::{Engine, EngineConfig, Nanos, MILLIS, SECS};
use tamp_proxy::{ProxyConfig, ProxyNode, RemoteView, VipTable};
use tamp_topology::{generators, HostId};
use tamp_wire::{DcId, NodeId, PartitionSet, ServiceDecl};

/// Knobs for the search-engine scenario.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Number of data centers (the paper uses 2: "east coast" / "west
    /// coast").
    pub datacenters: usize,
    /// One-way WAN latency between adjacent DCs (paper: ~90 ms RTT).
    pub wan_one_way: Nanos,
    /// Replicas per partition per DC (paper: 3).
    pub replicas: usize,
    /// Gateways per DC.
    pub gateways_per_dc: usize,
    /// Proxies per DC (paper: "multiple membership proxies for each data
    /// center to improve availability").
    pub proxies_per_dc: usize,
    /// Open-loop query inter-arrival per gateway (0 = none).
    pub arrival_period: Nanos,
    /// Index / doc service times.
    pub index_time: Nanos,
    pub doc_time: Nanos,
    pub lb: LoadBalance,
    /// Query all document partitions per search (the paper's Fig. 1
    /// flow) instead of a random one.
    pub doc_fanout: bool,
    pub seed: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            datacenters: 2,
            wan_one_way: 45 * MILLIS,
            replicas: 3,
            gateways_per_dc: 1,
            proxies_per_dc: 2,
            arrival_period: 50 * MILLIS,
            index_time: 5 * MILLIS,
            doc_time: 10 * MILLIS,
            lb: LoadBalance::Random,
            doc_fanout: false,
            seed: 2005,
        }
    }
}

/// A wired-up scenario: the engine plus handles for driving and
/// measuring it.
pub struct SearchScenario {
    pub engine: Engine,
    /// Gateway metrics per DC (one handle per gateway).
    pub gateway_metrics: Vec<Vec<MetricsHandle>>,
    /// All hosts per DC.
    pub dc_hosts: Vec<Vec<HostId>>,
    pub gateways: Vec<Vec<HostId>>,
    pub proxies: Vec<Vec<HostId>>,
    pub index_providers: Vec<Vec<HostId>>,
    pub doc_providers: Vec<Vec<HostId>>,
    pub vips: VipTable,
}

/// Index partitions in the prototype (paper Fig. 1: two).
pub const INDEX_PARTITIONS: u16 = 2;
/// Document partitions (paper Fig. 1: three).
pub const DOC_PARTITIONS: u16 = 3;

/// Build the scenario. Call `engine.start()` yourself (after any extra
/// actors), then run.
pub fn build(opts: &SearchOptions) -> SearchScenario {
    let per_dc = opts.gateways_per_dc
        + opts.proxies_per_dc
        + (INDEX_PARTITIONS as usize + DOC_PARTITIONS as usize) * opts.replicas;
    let per_segment = per_dc.div_ceil(2);
    let dcs: Vec<(usize, usize)> = (0..opts.datacenters).map(|_| (2, per_segment)).collect();
    let (topo, dc_hosts) = generators::multi_datacenter(&dcs, opts.wan_one_way);

    let engine_cfg = EngineConfig {
        series_bucket: SECS,
        ..Default::default()
    };
    let mut engine = Engine::new(topo, engine_cfg, opts.seed);

    let vips = VipTable::new();
    // Figs. 1/14 reproduce the paper's failover timeline: a kill becomes
    // a removal after exactly max_loss × period. The suspicion and
    // quarantine extensions add their settling windows on top, so they
    // are pinned off here (docs/ROBUSTNESS.md covers the trade-off).
    let membership = MembershipConfig {
        suspicion_window: 0,
        quarantine_window: 0,
        ..MembershipConfig::default()
    };

    let mut gateways = vec![Vec::new(); opts.datacenters];
    let mut proxies = vec![Vec::new(); opts.datacenters];
    let mut index_providers = vec![Vec::new(); opts.datacenters];
    let mut doc_providers = vec![Vec::new(); opts.datacenters];
    let mut gateway_metrics = vec![Vec::new(); opts.datacenters];

    for (dc_idx, hosts) in dc_hosts.iter().enumerate() {
        let dc = DcId(dc_idx as u16);
        let remote_dcs: Vec<DcId> = (0..opts.datacenters)
            .filter(|&d| d != dc_idx)
            .map(|d| DcId(d as u16))
            .collect();
        let mut it = hosts.iter().copied();

        // Gateways.
        for _ in 0..opts.gateways_per_dc {
            let h = it.next().expect("not enough hosts for gateways");
            let workflow = if opts.doc_fanout {
                Workflow::search_engine_fanout()
            } else {
                Workflow::search_engine()
            };
            let cfg = GatewayConfig {
                lb: opts.lb,
                ..GatewayConfig::new(membership.clone(), workflow, opts.arrival_period)
            };
            let gw = GatewayNode::new(NodeId(h.0), cfg);
            gateway_metrics[dc_idx].push(gw.metrics());
            gateways[dc_idx].push(h);
            engine.add_actor(h, Box::new(gw));
        }

        // Proxies (the first one seeds the DC's virtual IP).
        let remote_view = RemoteView::new();
        for i in 0..opts.proxies_per_dc {
            let h = it.next().expect("not enough hosts for proxies");
            if i == 0 {
                vips.set(dc, NodeId(h.0));
            }
            let p = ProxyNode::new(
                NodeId(h.0),
                ProxyConfig::new(dc, remote_dcs.clone(), membership.clone()),
                vips.clone(),
                remote_view.clone(),
            );
            proxies[dc_idx].push(h);
            engine.add_actor(h, Box::new(p));
        }

        // Index providers: `replicas` instances per partition.
        for part in 0..INDEX_PARTITIONS {
            for _ in 0..opts.replicas {
                let h = it.next().expect("not enough hosts for index");
                let mut m = membership.clone();
                m.services = vec![ServiceDecl::new("index", PartitionSet::from_iter([part]))];
                let p = ProviderNode::new(NodeId(h.0), ProviderConfig::new(m, opts.index_time));
                index_providers[dc_idx].push(h);
                engine.add_actor(h, Box::new(p));
            }
        }

        // Document providers.
        for part in 0..DOC_PARTITIONS {
            for _ in 0..opts.replicas {
                let h = it.next().expect("not enough hosts for doc");
                let mut m = membership.clone();
                m.services = vec![ServiceDecl::new("doc", PartitionSet::from_iter([part]))];
                let p = ProviderNode::new(NodeId(h.0), ProviderConfig::new(m, opts.doc_time));
                doc_providers[dc_idx].push(h);
                engine.add_actor(h, Box::new(p));
            }
        }
    }

    SearchScenario {
        engine,
        gateway_metrics,
        dc_hosts,
        gateways,
        proxies,
        index_providers,
        doc_providers,
        vips,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_wires_expected_counts() {
        let opts = SearchOptions::default();
        let s = build(&opts);
        assert_eq!(s.dc_hosts.len(), 2);
        for dc in 0..2 {
            assert_eq!(s.gateways[dc].len(), 1);
            assert_eq!(s.proxies[dc].len(), 2);
            assert_eq!(s.index_providers[dc].len(), 6);
            assert_eq!(s.doc_providers[dc].len(), 9);
        }
        // VIPs seeded with each DC's first proxy.
        assert_eq!(s.vips.get(DcId(0)), Some(NodeId(s.proxies[0][0].0)));
        assert_eq!(s.vips.get(DcId(1)), Some(NodeId(s.proxies[1][0].0)));
    }

    #[test]
    fn scenario_roles_are_disjoint() {
        let s = build(&SearchOptions::default());
        for dc in 0..2 {
            let mut all: Vec<HostId> = Vec::new();
            all.extend(&s.gateways[dc]);
            all.extend(&s.proxies[dc]);
            all.extend(&s.index_providers[dc]);
            all.extend(&s.doc_providers[dc]);
            let mut dedup = all.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(all.len(), dedup.len(), "role overlap in dc {dc}");
        }
    }
}
