//! Service provider: the Neptune provider module + a service-specific
//! handler with a simple FIFO processing model.

use std::collections::HashMap;
use tamp_membership::{MembershipConfig, MembershipNode};
use tamp_netsim::{Actor, Context, Nanos, PacketMeta, MILLIS};
use tamp_wire::{Message, NodeId, ServiceRequest, ServiceResponse};

/// Poll marker payload for the random-polling load balancer: a provider
/// answers a request with this payload immediately with its current
/// queue length instead of doing work.
pub const POLL_PAYLOAD: &[u8] = b"\x00__POLL";

/// Tunables of one provider node.
#[derive(Debug, Clone)]
pub struct ProviderConfig {
    /// Embedded membership configuration; `membership.services` declares
    /// what this provider serves.
    pub membership: MembershipConfig,
    /// Time to process one request (FIFO; requests queue behind each
    /// other).
    pub service_time: Nanos,
    /// Response payload size in bytes.
    pub response_size: usize,
}

impl ProviderConfig {
    pub fn new(membership: MembershipConfig, service_time: Nanos) -> Self {
        ProviderConfig {
            membership,
            service_time,
            response_size: 64,
        }
    }
}

impl Default for ProviderConfig {
    fn default() -> Self {
        ProviderConfig {
            membership: MembershipConfig::default(),
            service_time: 10 * MILLIS,
            response_size: 64,
        }
    }
}

const T_DONE: u64 = 5 << 32;
const PROVIDER_TOKEN_MASK: u64 = !0u64 << 32;

/// A cluster node that serves requests for its registered services.
pub struct ProviderNode {
    cfg: ProviderConfig,
    me: NodeId,
    inner: MembershipNode,
    /// When the currently queued work drains.
    busy_until: Nanos,
    /// Requests queued but not yet answered.
    queue_len: u32,
    /// Completion-timer sequence → response to send.
    in_service: HashMap<u64, (NodeId, u64)>,
    next_done: u64,
    crashed: bool,
}

impl ProviderNode {
    pub fn new(me: NodeId, cfg: ProviderConfig) -> Self {
        let inner = MembershipNode::new(me, cfg.membership.clone());
        ProviderNode {
            me,
            inner,
            busy_until: 0,
            queue_len: 0,
            in_service: HashMap::new(),
            next_done: 0,
            crashed: false,
            cfg,
        }
    }

    pub fn directory_client(&self) -> tamp_directory::DirectoryClient {
        self.inner.directory_client()
    }

    /// Introspection handle of the embedded membership node (leader
    /// votes for chaos target resolution).
    pub fn probe(&self) -> tamp_membership::Probe {
        self.inner.probe()
    }

    /// Current queue length (what a poll reports).
    pub fn queue_len(&self) -> u32 {
        self.queue_len
    }

    fn handle_request(&mut self, ctx: &mut Context, req: &ServiceRequest) {
        if req.payload == POLL_PAYLOAD {
            // Random-polling probe: answer with the queue length, no work.
            ctx.send_unicast(
                req.from,
                Message::ServiceResponse(ServiceResponse {
                    id: req.id,
                    from: self.me,
                    ok: true,
                    payload: self.queue_len.to_le_bytes().to_vec(),
                }),
            );
            return;
        }
        let now = ctx.now();
        let start = self.busy_until.max(now);
        self.busy_until = start + self.cfg.service_time;
        self.queue_len += 1;
        self.next_done += 1;
        let token = T_DONE | self.next_done;
        self.in_service.insert(self.next_done, (req.from, req.id));
        ctx.set_timer(self.busy_until - now, token);
    }
}

impl Actor for ProviderNode {
    fn on_start(&mut self, ctx: &mut Context) {
        if self.crashed {
            self.crashed = false;
            self.busy_until = 0;
            self.queue_len = 0;
            self.in_service.clear();
        }
        self.inner.on_start(ctx);
    }

    fn on_crash(&mut self) {
        self.crashed = true;
        self.inner.on_crash();
    }

    fn on_packet(&mut self, ctx: &mut Context, meta: PacketMeta, msg: &Message) {
        match msg {
            Message::ServiceRequest(r) => self.handle_request(ctx, r),
            Message::ServiceResponse(_) => {}
            other => self.inner.on_packet(ctx, meta, other),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, token: u64) {
        if token & PROVIDER_TOKEN_MASK == 0 {
            return self.inner.on_timer(ctx, token);
        }
        if token & PROVIDER_TOKEN_MASK == T_DONE {
            if let Some((reply_to, id)) = self.in_service.remove(&(token & 0xffff_ffff)) {
                self.queue_len = self.queue_len.saturating_sub(1);
                ctx.send_unicast(
                    reply_to,
                    Message::ServiceResponse(ServiceResponse {
                        id,
                        from: self.me,
                        ok: true,
                        payload: vec![0u8; self.cfg.response_size],
                    }),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tamp_netsim::{collect_effects, Destination, Effect};
    use tamp_topology::HostId;

    fn drive_request(provider: &mut ProviderNode, now: Nanos, payload: Vec<u8>) -> Vec<Effect> {
        let mut rng = StdRng::seed_from_u64(1);
        collect_effects(now, HostId(1), &mut rng, |ctx| {
            provider.handle_request(
                ctx,
                &ServiceRequest {
                    id: 42,
                    from: NodeId(9),
                    service: "doc".into(),
                    partition: 0,
                    payload,
                    hops_left: 0,
                },
            );
        })
    }

    #[test]
    fn poll_answers_immediately_with_queue_length() {
        let mut p = ProviderNode::new(NodeId(1), ProviderConfig::default());
        p.queue_len = 3;
        let effects = drive_request(&mut p, 0, POLL_PAYLOAD.to_vec());
        assert_eq!(effects.len(), 1);
        match &effects[0] {
            Effect::Send {
                dest: Destination::Unicast(h),
                msg: Message::ServiceResponse(r),
            } => {
                assert_eq!(h.0, 9);
                assert_eq!(r.payload, 3u32.to_le_bytes().to_vec());
                assert!(r.ok);
            }
            other => panic!("unexpected effect {other:?}"),
        }
        assert_eq!(p.queue_len, 3, "polls must not enqueue work");
    }

    #[test]
    fn requests_queue_fifo() {
        let mut p = ProviderNode::new(NodeId(1), ProviderConfig::default());
        // Two back-to-back requests at t=0: completions at 10ms and 20ms.
        let e1 = drive_request(&mut p, 0, vec![1]);
        let e2 = drive_request(&mut p, 0, vec![2]);
        let delay = |e: &[Effect]| match e[0] {
            Effect::SetTimer { delay, .. } => delay,
            _ => panic!(),
        };
        assert_eq!(delay(&e1), 10 * MILLIS);
        assert_eq!(delay(&e2), 20 * MILLIS);
        assert_eq!(p.queue_len(), 2);
    }

    #[test]
    fn idle_provider_starts_fresh() {
        let mut p = ProviderNode::new(NodeId(1), ProviderConfig::default());
        let _ = drive_request(&mut p, 0, vec![1]);
        // Next request arrives long after the queue drained.
        let e = drive_request(&mut p, 100 * MILLIS, vec![2]);
        match e[0] {
            Effect::SetTimer { delay, .. } => assert_eq!(delay, 10 * MILLIS),
            _ => panic!(),
        }
    }
}
