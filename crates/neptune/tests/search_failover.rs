//! The Fig. 14 experiment in miniature: a two-datacenter search engine
//! where the document-retrieval service of data center A fails and
//! recovers, with the membership proxies keeping the service available.

use tamp_neptune::search::{build, SearchOptions};
use tamp_netsim::{Control, MILLIS, SECS};

#[test]
fn search_engine_serves_queries_locally() {
    let mut s = build(&SearchOptions::default());
    s.engine.start();
    s.engine.run_until(30 * SECS);
    let m = s.gateway_metrics[0][0].lock();
    let tput = m.throughput_in(20 * SECS, 30 * SECS);
    // 20 qps arrival → ~200 completions in 10 s.
    assert!(
        (150..=220).contains(&tput),
        "throughput {tput} not near arrival rate; failed={} issued={}",
        m.failed.len(),
        m.issued
    );
    let lat = m.mean_latency_in(20 * SECS, 30 * SECS).unwrap();
    // Index (5 ms) + doc (10 ms) + LAN hops: well under 50 ms.
    assert!(
        lat < 50 * MILLIS,
        "local latency {} ms too high",
        lat / MILLIS
    );
    // Warmup latches as soon as *some* instance of each service appears;
    // a first query racing partial convergence can legitimately detour
    // through the proxies, so allow a stray one or two.
    assert!(
        m.remote_served <= 2,
        "steady state should stay local, remote_served={}",
        m.remote_served
    );
}

#[test]
fn doc_failure_fails_over_to_remote_dc_and_recovers() {
    let mut s = build(&SearchOptions::default());
    s.engine.start();

    // Fail all DC-0 document providers at t=20 s; revive at t=40 s
    // (the paper's schedule).
    for &h in &s.doc_providers[0].clone() {
        s.engine.schedule(20 * SECS, Control::Kill(h));
        s.engine.schedule(40 * SECS, Control::Revive(h));
    }
    s.engine.run_until(60 * SECS);

    let m = s.gateway_metrics[0][0].lock();

    // Steady state before the failure: low latency.
    let lat_before = m.mean_latency_in(10 * SECS, 20 * SECS).unwrap();
    assert!(lat_before < 50 * MILLIS, "{} ms", lat_before / MILLIS);

    // During the failover window (after detection settles): the service
    // is still available — throughput matches arrivals — but latency
    // reflects the WAN round trip (paper: "goes above 200 ms" with a
    // 90 ms RTT; here ≥ 90 ms one-way×2 plus service time).
    let tput_failover = m.throughput_in(30 * SECS, 40 * SECS);
    assert!(
        tput_failover >= 150,
        "service unavailable during failover: {tput_failover} in 10s, failed={}",
        m.failed.len()
    );
    let lat_failover = m.mean_latency_in(30 * SECS, 40 * SECS).unwrap();
    assert!(
        lat_failover > 90 * MILLIS,
        "failover latency {} ms does not include the WAN",
        lat_failover / MILLIS
    );
    assert!(m.remote_served > 100, "remote_served {}", m.remote_served);

    // After recovery: latency returns to local levels ("the response
    // time quickly drops since all the requests are again serviced
    // locally").
    let lat_after = m.mean_latency_in(50 * SECS, 60 * SECS).unwrap();
    assert!(
        lat_after < 50 * MILLIS,
        "post-recovery latency {} ms",
        lat_after / MILLIS
    );

    // The throughput dip is confined to the detection window
    // (~max_loss × period after the kill): across the whole run, failures
    // are a small fraction of issued queries.
    let failed = m.failed.len() as f64;
    let issued = m.issued as f64;
    assert!(
        failed / issued < 0.10,
        "too many failed queries: {failed}/{issued}"
    );
}

#[test]
fn proxy_leader_failover_keeps_wan_path_alive() {
    let mut s = build(&SearchOptions::default());
    s.engine.start();

    // Kill DC-0's docs so traffic must go remote, then also kill DC-0's
    // proxy *leader*: the second proxy takes over the VIP.
    for &h in &s.doc_providers[0].clone() {
        s.engine.schedule(15 * SECS, Control::Kill(h));
    }
    let leader = s.proxies[0][0];
    s.engine.schedule(30 * SECS, Control::Kill(leader));
    s.engine.run_until(60 * SECS);

    let m = s.gateway_metrics[0][0].lock();
    // Well after the proxy failover settles, queries still complete.
    let tput_late = m.throughput_in(50 * SECS, 60 * SECS);
    assert!(
        tput_late >= 120,
        "throughput collapsed after proxy leader death: {tput_late}"
    );
    // And the VIP moved to the surviving proxy.
    assert_eq!(
        s.vips.get(tamp_wire::DcId(0)),
        Some(tamp_wire::NodeId(s.proxies[0][1].0))
    );
}

#[test]
fn poll_two_load_balancing_works_end_to_end() {
    use tamp_neptune::search::{build, SearchOptions};
    use tamp_neptune::LoadBalance;
    let opts = SearchOptions {
        datacenters: 1,
        proxies_per_dc: 0,
        lb: LoadBalance::PollTwo,
        seed: 4242,
        ..Default::default()
    };
    let mut s = build(&opts);
    s.engine.start();
    s.engine.run_until(25 * SECS);
    let m = s.gateway_metrics[0][0].lock();
    let tput = m.throughput_in(15 * SECS, 25 * SECS);
    assert!(
        (150..=220).contains(&tput),
        "PollTwo throughput {tput}; failed={}",
        m.failed.len()
    );
    // Poll probes add one short RTT before dispatch; latency stays low.
    let lat = m.mean_latency_in(15 * SECS, 25 * SECS).unwrap();
    assert!(lat < 60 * MILLIS, "PollTwo latency {} ms", lat / MILLIS);
}

#[test]
fn single_replica_saturation_queues_requests() {
    // With 1 replica per partition and service time close to the
    // arrival spacing, queueing shows up in the latency (the FIFO
    // provider model at work).
    use tamp_neptune::search::{build, SearchOptions};
    let opts = SearchOptions {
        datacenters: 1,
        proxies_per_dc: 0,
        replicas: 1,
        arrival_period: 25 * MILLIS, // 40 qps over 2 index partitions
        index_time: 20 * MILLIS,     // ~40% utilization per instance...
        doc_time: 30 * MILLIS,       // doc: 40/3 qps x 30ms = 40% each
        seed: 77,
        ..Default::default()
    };
    let mut s = build(&opts);
    s.engine.start();
    s.engine.run_until(30 * SECS);
    let m = s.gateway_metrics[0][0].lock();
    let lat = m.mean_latency_in(20 * SECS, 30 * SECS).unwrap();
    // Base service time is 50 ms; queueing pushes the mean above it.
    assert!(
        lat > 50 * MILLIS,
        "expected queueing delay above base 50 ms, got {} ms",
        lat / MILLIS
    );
    // But the system is stable (not saturated): arrivals are served.
    let tput = m.throughput_in(20 * SECS, 30 * SECS);
    assert!(tput >= 350, "unstable under load: {tput}/10s at 40 qps");
}

#[test]
fn doc_fanout_queries_all_partitions_and_fails_over() {
    // The paper's exact Fig. 1 flow: every query hits one index
    // partition then ALL document partitions in parallel. Latency is
    // the max of the three doc sub-requests, and a whole-service
    // failure still fails over through the proxies per partition.
    use tamp_neptune::search::{build, SearchOptions};
    let opts = SearchOptions {
        doc_fanout: true,
        seed: 31337,
        ..Default::default()
    };
    let mut s = build(&opts);
    for &h in &s.doc_providers[0].clone() {
        s.engine.schedule(20 * SECS, Control::Kill(h));
    }
    s.engine.start();
    s.engine.run_until(40 * SECS);
    let m = s.gateway_metrics[0][0].lock();

    // Local steady state: still fast (parallel fan-out ≈ max of three
    // 10 ms services).
    let lat_before = m.mean_latency_in(10 * SECS, 20 * SECS).unwrap();
    assert!(lat_before < 60 * MILLIS, "{} ms", lat_before / MILLIS);

    // Failed over: all three doc partitions go remote in parallel —
    // latency is one WAN round trip, not three.
    let lat_failover = m.mean_latency_in(30 * SECS, 40 * SECS).unwrap();
    assert!(
        (90 * MILLIS..250 * MILLIS).contains(&lat_failover),
        "failover latency {} ms",
        lat_failover / MILLIS
    );
    let tput = m.throughput_in(30 * SECS, 40 * SECS);
    assert!(tput >= 150, "fan-out failover throughput {tput}");
}
