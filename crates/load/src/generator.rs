//! The load-generator node: one actor standing in for a slice of the
//! synthetic user population.
//!
//! Like the neptune gateway it embeds a [`MembershipNode`] and routes
//! every request through the live view (resolve replicas, retry on
//! another replica, fall back to the membership proxies when the local
//! DC has none). Unlike the gateway it scales to millions of users by
//! aggregating arrivals into a calendar of fixed-width ticks instead of
//! keeping one timer per user, and it records per-request telemetry
//! (latency histograms, throughput timeline, error taxonomy) instead of
//! per-query vectors.
//!
//! ## Request flow
//!
//! Each user request is the paper's Fig. 1 two-step workflow: one
//! `index` lookup at a uniformly random partition, then one `doc`
//! retrieval at a Zipf-distributed partition (hot documents are hot for
//! everyone). Each step is retried across replicas, then across the
//! proxies, before the request is declared failed.
//!
//! ## Error taxonomy
//!
//! * `errors.routed_to_dead` — an attempt timed out and the target had
//!   already vanished from the view (we raced a failure), or an instance
//!   rejected a request the view said it served.
//! * `errors.timeout` — an attempt timed out while the view still
//!   listed the target (overload or packet loss, not staleness).
//! * `errors.retry_exhausted` — a request ran out of replicas *and*
//!   proxy fallback; this is the only class that fails the request.

use crate::telemetry::LoadTelemetry;
use crate::workload::{ArrivalMode, WorkloadConfig, ZipfSampler};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::{BTreeMap, HashMap};
use tamp_membership::{MembershipConfig, MembershipNode, Probe};
use tamp_netsim::{Actor, Context, Nanos, PacketMeta, MILLIS};
use tamp_proxy::PROXY_SERVICE;
use tamp_telemetry::ProtocolEvent;
use tamp_wire::{Message, NodeId, ServiceRequest, ServiceResponse};

/// Generator tunables.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    pub membership: MembershipConfig,
    pub workload: WorkloadConfig,
    /// Partition counts of the two workflow services.
    pub index_partitions: u16,
    pub doc_partitions: u16,
    /// Per-attempt timeout against a local instance.
    pub request_timeout: Nanos,
    /// Timeout for a proxied (remote DC) attempt.
    pub proxy_timeout: Nanos,
    /// Local replica attempts per step before proxy fallback.
    pub max_local_attempts: u32,
    pub payload_size: usize,
    /// Emit per-request [`ProtocolEvent`]s (off by default: at millions
    /// of users the event log, not the protocol, becomes the workload).
    pub emit_events: bool,
}

impl LoadGenConfig {
    pub fn new(membership: MembershipConfig, workload: WorkloadConfig) -> Self {
        LoadGenConfig {
            membership,
            workload,
            index_partitions: 4,
            doc_partitions: 12,
            request_timeout: 250 * MILLIS,
            proxy_timeout: 2_000 * MILLIS,
            max_local_attempts: 2,
            payload_size: 96,
            emit_events: false,
        }
    }
}

const T_TICK: u64 = 8 << 32;
const T_TIMEOUT: u64 = 9 << 32;
const LOAD_TOKEN_MASK: u64 = !0u64 << 32;

/// One in-flight user request.
#[derive(Debug)]
struct Req {
    started: Nanos,
    /// 0 = index step, 1 = doc step.
    step: u8,
    index_part: u16,
    doc_part: u16,
    attempts: u32,
    tried: Vec<NodeId>,
    /// Proxy fallback used for the *current* step.
    step_used_proxy: bool,
    /// Any step of this request went through a proxy.
    via_proxy: bool,
}

impl Req {
    fn target(&self) -> (&'static str, u16) {
        if self.step == 0 {
            ("index", self.index_part)
        } else {
            ("doc", self.doc_part)
        }
    }
}

/// The load-generator actor.
pub struct LoadGenNode {
    cfg: LoadGenConfig,
    me: NodeId,
    inner: MembershipNode,
    telemetry: LoadTelemetry,
    zipf: ZipfSampler,
    /// Private workload stream, decoupled from the engine's entropy so
    /// routing jitter never changes which partitions users ask for.
    rng: StdRng,
    warmed: bool,
    /// Arrival process seeded (one-shot after warm-up).
    started: bool,
    /// Closed loop: tick → number of users whose think time expires then.
    calendar: BTreeMap<u32, u32>,
    /// Open loop: (first tick after warm-up, requests issued so far).
    open_base: Option<(u32, u64)>,
    reqs: HashMap<u32, Req>,
    next_serial: u32,
    next_seq: u32,
    /// Attempt seq → (owning request, target, was a proxy attempt).
    inflight: HashMap<u32, (u32, NodeId, bool)>,
    crashed: bool,
}

impl LoadGenNode {
    pub fn new(me: NodeId, cfg: LoadGenConfig, telemetry: LoadTelemetry) -> Self {
        let inner = MembershipNode::new(me, cfg.membership.clone());
        let zipf = ZipfSampler::from_skew(cfg.doc_partitions, cfg.workload.skew);
        let rng = StdRng::seed_from_u64(
            cfg.workload
                .seed
                .wrapping_add((me.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        LoadGenNode {
            me,
            inner,
            telemetry,
            zipf,
            rng,
            warmed: false,
            started: false,
            calendar: BTreeMap::new(),
            open_base: None,
            reqs: HashMap::new(),
            next_serial: 0,
            next_seq: 0,
            inflight: HashMap::new(),
            crashed: false,
            cfg,
        }
    }

    pub fn directory_client(&self) -> tamp_directory::DirectoryClient {
        self.inner.directory_client()
    }

    /// Introspection handle (leader votes for chaos target resolution).
    pub fn probe(&self) -> Probe {
        self.inner.probe()
    }

    /// One-way latch: true once the view lists every service partition a
    /// request could touch. Later failures must not re-gate arrivals.
    fn warmed_up(&mut self) -> bool {
        if self.warmed {
            return true;
        }
        let client = self.inner.directory_client();
        self.warmed = (0..self.cfg.index_partitions)
            .all(|p| !client.resolve("index", p).is_empty())
            && (0..self.cfg.doc_partitions).all(|p| !client.resolve("doc", p).is_empty());
        self.warmed
    }

    /// First warm tick: seed the arrival process.
    fn begin(&mut self, tick: u32) {
        match self.cfg.workload.mode {
            ArrivalMode::Closed => {
                // Users start mid-think: each first arrival is a residual
                // think time drawn from the *equilibrium* distribution of
                // the U[m/2, 3m/2) think process — uniform below m/2, a
                // triangular tail above. Starting from the stationary
                // phase keeps the offered rate flat from the first tick
                // (a uniform spread over one window under-fills the tail
                // and ramps ~10% high before mixing). f64 sqrt is
                // IEEE-correctly-rounded, so the draws stay bit-stable.
                let m = self.cfg.workload.think_mean.max(1) as f64;
                let (a, b) = (m / 2.0, 1.5 * m);
                let tick_ns = self.cfg.workload.tick;
                for _ in 0..self.cfg.workload.users {
                    let u = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    let r = if u < 0.5 {
                        2.0 * u * a
                    } else {
                        b - (b - a) * (2.0 - 2.0 * u).sqrt()
                    };
                    let off = (r as u64 / tick_ns) as u32;
                    *self.calendar.entry(tick + 1 + off).or_insert(0) += 1;
                }
            }
            ArrivalMode::Open => self.open_base = Some((tick, 0)),
        }
    }

    /// Arrivals due at `tick`.
    fn due_now(&mut self, tick: u32) -> u64 {
        match self.cfg.workload.mode {
            ArrivalMode::Closed => u64::from(self.calendar.remove(&tick).unwrap_or(0)),
            ArrivalMode::Open => {
                let Some((base, issued)) = self.open_base else {
                    return 0;
                };
                // Deterministic integer arrival schedule at the
                // population's steady rate, independent of completions.
                let elapsed = u128::from(tick - base);
                let target = elapsed
                    * u128::from(self.cfg.workload.users)
                    * u128::from(self.cfg.workload.tick)
                    / u128::from(self.cfg.workload.think_mean.max(1));
                let due = (target.min(u128::from(u64::MAX)) as u64).saturating_sub(issued);
                self.open_base = Some((base, issued + due));
                due
            }
        }
    }

    fn start_request(&mut self, ctx: &mut Context) {
        self.next_serial += 1;
        let serial = self.next_serial;
        let index_part = (self.rng.next_u64() % u64::from(self.cfg.index_partitions)) as u16;
        let doc_part = self.zipf.sample(&mut self.rng);
        ctx.count("load", "issued", 1);
        if self.cfg.emit_events {
            ctx.emit(ProtocolEvent::RequestIssued {
                partition: doc_part,
            });
        }
        self.reqs.insert(
            serial,
            Req {
                started: ctx.now(),
                step: 0,
                index_part,
                doc_part,
                attempts: 0,
                tried: Vec::new(),
                step_used_proxy: false,
                via_proxy: false,
            },
        );
        self.dispatch(ctx, serial);
    }

    /// Route the current step of `serial`: next untried replica, proxy
    /// fallback, or fail the request.
    fn dispatch(&mut self, ctx: &mut Context, serial: u32) {
        let Some(req) = self.reqs.get(&serial) else {
            return;
        };
        let (service, partition) = req.target();
        let candidates: Vec<NodeId> = self
            .inner
            .resolve_service(service, partition)
            .into_iter()
            .filter(|n| !req.tried.contains(n))
            .collect();

        if !candidates.is_empty() && req.attempts < self.cfg.max_local_attempts {
            let i = (self.rng.next_u64() % candidates.len() as u64) as usize;
            let target = candidates[i];
            self.send_attempt(ctx, serial, target, service, partition, false);
            return;
        }

        // Proxy fallback (paper Fig. 6): route the step through a local
        // membership proxy to a remote data center.
        if !req.step_used_proxy {
            let proxies = self
                .inner
                .directory_client()
                .lookup_service(PROXY_SERVICE, "")
                .unwrap_or_default();
            if !proxies.is_empty() {
                let i = (self.rng.next_u64() % proxies.len() as u64) as usize;
                let proxy = proxies[i].node;
                self.reqs.get_mut(&serial).unwrap().step_used_proxy = true;
                self.send_attempt(ctx, serial, proxy, service, partition, true);
                return;
            }
        }
        self.fail_request(ctx, serial);
    }

    fn send_attempt(
        &mut self,
        ctx: &mut Context,
        serial: u32,
        target: NodeId,
        service: &str,
        partition: u16,
        proxied: bool,
    ) {
        self.next_seq += 1;
        let seq = self.next_seq;
        let id = ((self.me.0 as u64) << 32) | u64::from(seq);
        let req = self.reqs.get_mut(&serial).unwrap();
        if !proxied {
            req.attempts += 1;
            req.tried.push(target);
        }
        self.inflight.insert(seq, (serial, target, proxied));
        ctx.send_unicast(
            target,
            Message::ServiceRequest(ServiceRequest {
                id,
                from: self.me,
                service: service.to_string(),
                partition,
                payload: vec![0u8; self.cfg.payload_size],
                hops_left: if proxied { 2 } else { 0 },
            }),
        );
        let timeout = if proxied {
            self.cfg.proxy_timeout
        } else {
            self.cfg.request_timeout
        };
        ctx.set_timer(timeout, T_TIMEOUT | u64::from(seq));
    }

    fn handle_response(&mut self, ctx: &mut Context, r: &ServiceResponse) {
        let seq = (r.id & 0xffff_ffff) as u32;
        let Some((serial, _target, proxied)) = self.inflight.remove(&seq) else {
            return; // Late response to a timed-out attempt.
        };
        let Some(req) = self.reqs.get_mut(&serial) else {
            return;
        };
        if r.ok {
            if proxied {
                req.via_proxy = true;
            }
            if req.step == 0 {
                // Index step done; start the doc step fresh.
                req.step = 1;
                req.attempts = 0;
                req.tried.clear();
                req.step_used_proxy = false;
                self.dispatch(ctx, serial);
            } else {
                self.complete_request(ctx, serial);
            }
        } else {
            // The view routed us somewhere that could not serve.
            ctx.count("load", "errors.routed_to_dead", 1);
            self.dispatch(ctx, serial);
        }
    }

    fn handle_timeout(&mut self, ctx: &mut Context, seq: u32) {
        let Some((serial, target, proxied)) = self.inflight.remove(&seq) else {
            return; // Attempt already answered.
        };
        let Some(req) = self.reqs.get(&serial) else {
            return;
        };
        let (service, partition) = req.target();
        // Classify: stale view (target already dropped) vs plain
        // timeout (target still believed alive: loss or overload).
        let stale = !proxied
            && !self
                .inner
                .resolve_service(service, partition)
                .contains(&target);
        if stale {
            ctx.count("load", "errors.routed_to_dead", 1);
        } else {
            ctx.count("load", "errors.timeout", 1);
        }
        self.dispatch(ctx, serial);
    }

    fn complete_request(&mut self, ctx: &mut Context, serial: u32) {
        let Some(req) = self.reqs.remove(&serial) else {
            return;
        };
        let now = ctx.now();
        let latency = now - req.started;
        ctx.count("load", "completed", 1);
        if req.via_proxy {
            ctx.count("load", "proxied", 1);
        }
        self.telemetry
            .record_completion(now, req.doc_part, latency, req.via_proxy);
        if self.cfg.emit_events {
            ctx.emit(ProtocolEvent::RequestCompleted {
                partition: req.doc_part,
                latency_us: (latency / 1_000).min(u64::from(u32::MAX)) as u32,
            });
        }
        if self.cfg.workload.mode == ArrivalMode::Closed {
            self.schedule_rearrival(now);
        }
    }

    fn fail_request(&mut self, ctx: &mut Context, serial: u32) {
        let Some(req) = self.reqs.remove(&serial) else {
            return;
        };
        let now = ctx.now();
        ctx.count("load", "failed", 1);
        ctx.count("load", "errors.retry_exhausted", 1);
        self.telemetry.record_failure(now);
        if self.cfg.emit_events {
            ctx.emit(ProtocolEvent::RequestFailed {
                partition: req.doc_part,
                reason: "retry-exhausted",
            });
        }
        // A failed user thinks and retries too (the page got an error).
        if self.cfg.workload.mode == ArrivalMode::Closed {
            self.schedule_rearrival(now);
        }
    }

    /// Closed loop: after a response the user thinks, then comes back.
    fn schedule_rearrival(&mut self, now: Nanos) {
        let mean = self.cfg.workload.think_mean.max(1);
        // Uniform in [mean/2, 3·mean/2): same mean, cheap, deterministic.
        let think = mean / 2 + self.rng.next_u64() % mean;
        let tick = ((now + think) / self.cfg.workload.tick + 1).min(u64::from(u32::MAX)) as u32;
        *self.calendar.entry(tick).or_insert(0) += 1;
    }
}

impl Actor for LoadGenNode {
    fn on_start(&mut self, ctx: &mut Context) {
        if self.crashed {
            // A real crash loses the user population's state; ramp up
            // again from scratch.
            self.crashed = false;
            self.warmed = false;
            self.started = false;
            self.calendar.clear();
            self.open_base = None;
            self.reqs.clear();
            self.inflight.clear();
        }
        self.inner.on_start(ctx);
        let tick_ns = self.cfg.workload.tick;
        let next = ctx.now() / tick_ns + 1;
        ctx.set_timer(next * tick_ns - ctx.now(), T_TICK | (next & 0xffff_ffff));
    }

    fn on_crash(&mut self) {
        self.crashed = true;
        self.inner.on_crash();
    }

    fn on_packet(&mut self, ctx: &mut Context, meta: PacketMeta, msg: &Message) {
        match msg {
            Message::ServiceResponse(r) => self.handle_response(ctx, r),
            Message::ServiceRequest(_) => {}
            other => self.inner.on_packet(ctx, meta, other),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, token: u64) {
        if token & LOAD_TOKEN_MASK == 0 {
            return self.inner.on_timer(ctx, token);
        }
        match token & LOAD_TOKEN_MASK {
            T_TICK => {
                let tick = (token & 0xffff_ffff) as u32;
                ctx.set_timer(
                    self.cfg.workload.tick,
                    T_TICK | u64::from(tick.wrapping_add(1)),
                );
                if !self.warmed_up() {
                    return;
                }
                if !self.started {
                    self.started = true;
                    self.begin(tick);
                }
                let due = self.due_now(tick);
                for _ in 0..due {
                    self.start_request(ctx);
                }
            }
            T_TIMEOUT => self.handle_timeout(ctx, (token & 0xffff_ffff) as u32),
            _ => {}
        }
    }
}
