//! # tamp-load — production-scale workload generation and SLO measurement
//!
//! The ROADMAP north-star is a membership service that "serves heavy
//! traffic from millions of users"; this crate is the subsystem that
//! generates that traffic and measures what the cluster delivers.
//!
//! * [`workload`] — the synthetic population: open/closed-loop arrival
//!   processes, think times, and a seed-stable inverse-CDF Zipfian
//!   partition sampler.
//! * [`generator`] — the [`LoadGenNode`] actor: millions of users per
//!   node via calendar-tick aggregation, routing every request through
//!   the live membership view (replica retry → proxy failover) with a
//!   routed-to-dead / timeout / retry-exhausted error taxonomy.
//! * [`telemetry`] — per-request latency into power-of-two histograms
//!   (cluster-wide and per doc partition) plus a per-second throughput
//!   timeline, all exported byte-deterministically.
//! * [`scenario`] — multi-datacenter cluster construction sized for
//!   production-scale populations.
//! * [`campaign`] — chaos-under-load: replay `.chaos` fault schedules
//!   while the generators run; report throughput dips, p99 during
//!   failover, and goodput lost per fault, parallelized on the tamp-par
//!   pool with byte-identical results at any `--jobs` width.
//!
//! ## Determinism contract
//!
//! Same seed ⇒ byte-identical draws, routes, histograms, and reports —
//! across runs and across pool widths. The workload stream is seeded
//! separately from the engine so routing entropy never changes which
//! partitions users ask for.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use tamp_load::ZipfSampler;
//!
//! let zipf = ZipfSampler::new(12, 1.1);
//! let draws = |seed| {
//!     let mut rng = StdRng::seed_from_u64(seed);
//!     (0..100).map(|_| zipf.sample(&mut rng)).collect::<Vec<u16>>()
//! };
//! assert_eq!(draws(7), draws(7));
//! // Rank 0 is the hottest partition under Zipf skew.
//! assert!(zipf.probabilities()[0] > zipf.probabilities()[11]);
//! ```

pub mod campaign;
pub mod generator;
pub mod scenario;
pub mod telemetry;
pub mod workload;

pub use campaign::{run_campaign, run_one, Campaign, CampaignFault, FaultOutcome, RunSummary};
pub use generator::{LoadGenConfig, LoadGenNode};
pub use scenario::{build, LoadScenario, LoadScenarioConfig};
pub use telemetry::{Cell, LoadTelemetry, Timeline, SUBSYSTEM};
pub use workload::{ArrivalMode, Skew, WorkloadConfig, ZipfSampler};
