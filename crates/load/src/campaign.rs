//! Chaos-under-load campaigns: replay `.chaos` fault schedules against
//! a cluster while the generators are running, and report what the
//! *requests* saw — throughput dips, p99 during failover, goodput lost.
//!
//! Each fault runs in its own engine (same seed, same workload), so
//! outcomes are comparable and the sweep parallelizes on the tamp-par
//! pool with byte-identical reports at any `--jobs` width.

use crate::scenario::{build, LoadScenarioConfig};
use crate::telemetry::Cell;
use std::collections::BTreeMap;
use tamp_chaos::{apply_schedule, GroundTruth, Schedule};
use tamp_netsim::{Nanos, SECS};
use tamp_par::Pool;
use tamp_telemetry::HistogramSnapshot;

/// One named fault schedule to run under load.
#[derive(Debug, Clone)]
pub struct CampaignFault {
    pub name: String,
    pub schedule: Schedule,
}

/// Campaign timing: generators warm up, then faults fire inside the
/// measurement window.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Membership convergence + arrival ramp before measurement starts.
    pub warmup: Nanos,
    /// Measurement window length (the run extends past it if a
    /// schedule's horizon does).
    pub duration: Nanos,
    pub faults: Vec<CampaignFault>,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign {
            warmup: 45 * SECS,
            duration: 45 * SECS,
            faults: Vec::new(),
        }
    }
}

/// Everything one run measured.
#[derive(Debug, Clone)]
pub struct RunSummary {
    pub issued: u64,
    pub completed: u64,
    pub failed: u64,
    pub proxied: u64,
    /// Error-taxonomy counters, name → count.
    pub errors: BTreeMap<String, u64>,
    /// Cluster-wide end-to-end latency.
    pub overall: HistogramSnapshot,
    /// Per doc-partition latency.
    pub per_partition: Vec<HistogramSnapshot>,
    /// Latency of requests that crossed a proxy hop.
    pub proxied_latency: HistogramSnapshot,
    /// Latency of requests answered without a proxy hop.
    pub direct_latency: HistogramSnapshot,
    /// Per-second throughput/latency timeline.
    pub cells: Vec<Cell>,
    /// `[start, end)` seconds of the pre-fault baseline window.
    pub baseline: (usize, usize),
    /// `[start, end)` seconds of the fault window (empty schedule:
    /// whole measurement window).
    pub fault_window: (usize, usize),
}

impl RunSummary {
    fn window_rates(&self, from: usize, to: usize) -> (f64, u64) {
        let secs = to.saturating_sub(from).max(1);
        let completed: u64 = self
            .cells
            .iter()
            .take(to.min(self.cells.len()))
            .skip(from)
            .map(|c| c.completed)
            .sum();
        (completed as f64 / secs as f64, completed)
    }

    /// Mean completion rate over the baseline window (req/s).
    pub fn baseline_rate(&self) -> f64 {
        self.window_rates(self.baseline.0, self.baseline.1).0
    }

    /// Worst single-second completion rate inside the fault window.
    pub fn fault_min_rate(&self) -> u64 {
        let (from, to) = self.fault_window;
        self.cells
            .iter()
            .take(to.min(self.cells.len()))
            .skip(from)
            .map(|c| c.completed)
            .min()
            .unwrap_or(0)
    }

    /// Throughput dip: how far the worst fault-window second fell below
    /// the baseline rate, in percent of baseline.
    pub fn throughput_dip_pct(&self) -> f64 {
        let base = self.baseline_rate();
        if base <= 0.0 {
            return 0.0;
        }
        (100.0 * (1.0 - self.fault_min_rate() as f64 / base)).max(0.0)
    }

    fn merged(&self, from: usize, to: usize) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for cell in self.cells.iter().take(to.min(self.cells.len())).skip(from) {
            out.merge(&cell.lat);
        }
        out
    }

    /// p99 latency (ns) of requests completing in the baseline window.
    pub fn baseline_p99(&self) -> u64 {
        self.merged(self.baseline.0, self.baseline.1).quantile(0.99)
    }

    /// p99 latency (ns) of requests completing in the fault window.
    pub fn fault_p99(&self) -> u64 {
        self.merged(self.fault_window.0, self.fault_window.1)
            .quantile(0.99)
    }

    /// Completions the fault cost us: baseline rate extrapolated over
    /// the fault window minus what actually completed.
    pub fn goodput_lost(&self) -> i64 {
        let (from, to) = self.fault_window;
        let expected = self.baseline_rate() * to.saturating_sub(from) as f64;
        let (_, actual) = self.window_rates(from, to);
        expected as i64 - actual as i64
    }
}

/// Outcome of one fault run.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    pub name: String,
    /// Concrete actions fired (resolved leader/random targets).
    pub resolved: Vec<String>,
    pub summary: RunSummary,
}

/// Run one schedule against a fresh scenario: warm up, fire the faults,
/// run out the measurement window and the schedule horizon.
pub fn run_one(cfg: &LoadScenarioConfig, schedule: &Schedule, campaign: &Campaign) -> FaultOutcome {
    let mut schedule = schedule.clone();
    schedule.normalize();
    let mut s = build(cfg);
    s.engine.start();
    s.engine.run_until(campaign.warmup);

    let mut truth = GroundTruth::new();
    let resolved = apply_schedule(
        &mut s.engine,
        &s.probes,
        &schedule,
        cfg.seed,
        0.0,
        &mut truth,
    );

    let end = (campaign.warmup + campaign.duration).max(schedule.horizon());
    s.engine.run_until(end);

    let snap = s.engine.registry().snapshot();
    let mut errors = BTreeMap::new();
    for name in ["routed_to_dead", "timeout", "retry_exhausted"] {
        errors.insert(
            name.to_string(),
            snap.counter_total("load", &format!("errors.{name}")),
        );
    }
    let per_partition = (0..cfg.doc_partitions)
        .map(|p| {
            snap.histogram(
                tamp_telemetry::CLUSTER,
                "load",
                &format!("latency_ns.doc{p:02}"),
            )
            .cloned()
            .unwrap_or_default()
        })
        .collect();

    let warm_s = (campaign.warmup / SECS) as usize;
    let end_s = (end / SECS) as usize;
    let (baseline, fault_window) = match schedule.events.first() {
        Some(first) => {
            let fault_s = (first.at / SECS) as usize;
            ((warm_s, fault_s.max(warm_s)), (fault_s, end_s))
        }
        None => ((warm_s, end_s), (warm_s, end_s)),
    };

    let timeline = s.telemetry.timeline.lock();
    FaultOutcome {
        name: String::new(),
        resolved,
        summary: RunSummary {
            issued: snap.counter_total("load", "issued"),
            completed: snap.counter_total("load", "completed"),
            failed: snap.counter_total("load", "failed"),
            proxied: snap.counter_total("load", "proxied"),
            errors,
            overall: s.telemetry.latency.snapshot(),
            per_partition,
            proxied_latency: s.telemetry.proxied.snapshot(),
            direct_latency: s.telemetry.direct.snapshot(),
            cells: timeline.cells().to_vec(),
            baseline,
            fault_window,
        },
    }
}

/// Run every fault of `campaign` (plus an implicit fault-free baseline
/// as the first row) on `pool`, in a deterministic order.
pub fn run_campaign(
    cfg: &LoadScenarioConfig,
    campaign: &Campaign,
    pool: &Pool,
) -> Vec<FaultOutcome> {
    let mut runs: Vec<(String, Schedule)> =
        vec![("baseline".to_string(), Schedule::new(Vec::new()))];
    runs.extend(
        campaign
            .faults
            .iter()
            .map(|f| (f.name.clone(), f.schedule.clone())),
    );
    pool.ordered_map(runs.len(), |i| {
        let (name, schedule) = &runs[i];
        let mut outcome = run_one(cfg, schedule, campaign);
        outcome.name = name.clone();
        outcome
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadConfig;
    use tamp_chaos::{Action, ScheduledFault, Target};

    fn tiny_cfg() -> LoadScenarioConfig {
        LoadScenarioConfig {
            users: 400,
            datacenters: 2,
            workload: WorkloadConfig {
                think_mean: 10 * SECS,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn tiny_campaign() -> Campaign {
        Campaign {
            warmup: 30 * SECS,
            duration: 20 * SECS,
            faults: vec![CampaignFault {
                name: "leader-death".to_string(),
                schedule: Schedule {
                    events: vec![ScheduledFault {
                        at: 35 * SECS,
                        action: Action::Kill(Target::Leader(0)),
                    }],
                    settle: 10 * SECS,
                    ..Schedule::default()
                },
            }],
        }
    }

    #[test]
    fn campaign_runs_and_reports() {
        let outcomes = run_campaign(&tiny_cfg(), &tiny_campaign(), &Pool::sequential());
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].name, "baseline");
        assert!(outcomes[0].resolved.is_empty());
        assert_eq!(outcomes[1].resolved.len(), 1);
        for o in &outcomes {
            assert!(o.summary.completed > 0, "{}: nothing completed", o.name);
            // Every completion is attributed to exactly one path.
            assert_eq!(
                o.summary.proxied_latency.count + o.summary.direct_latency.count,
                o.summary.overall.count,
                "{}: proxied/direct split must partition the completions",
                o.name
            );
            assert_eq!(o.summary.proxied_latency.count, o.summary.proxied);
        }
    }

    #[test]
    fn campaign_is_byte_identical_across_pool_widths() {
        let cfg = tiny_cfg();
        let campaign = tiny_campaign();
        let a = run_campaign(&cfg, &campaign, &Pool::sequential());
        let b = run_campaign(&cfg, &campaign, &Pool::new(4));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.resolved, y.resolved);
            assert_eq!(x.summary.issued, y.summary.issued);
            assert_eq!(x.summary.completed, y.summary.completed);
            assert_eq!(x.summary.overall.buckets, y.summary.overall.buckets);
            assert_eq!(
                x.summary
                    .cells
                    .iter()
                    .map(|c| c.completed)
                    .collect::<Vec<_>>(),
                y.summary
                    .cells
                    .iter()
                    .map(|c| c.completed)
                    .collect::<Vec<_>>()
            );
        }
    }
}
