//! Per-request SLO telemetry: cluster-wide and per-partition latency
//! histograms plus a per-second throughput timeline.
//!
//! Counters and latency samples live in the engine's tamp-telemetry
//! [`Registry`] like every other subsystem;
//! the timeline is the one load-specific structure (the registry's time
//! series track counters, not histogram-per-second), recorded directly
//! through the public [`HistogramSnapshot`] bucket layout.

use parking_lot::Mutex;
use std::sync::Arc;
use tamp_netsim::Nanos;
use tamp_telemetry::{Histogram, HistogramSnapshot, Registry, CLUSTER};

/// Telemetry subsystem name for everything tamp-load records.
pub const SUBSYSTEM: &str = "load";

/// One second of the throughput timeline.
#[derive(Debug, Clone, Default)]
pub struct Cell {
    pub completed: u64,
    pub failed: u64,
    /// Latency distribution of the requests completed this second.
    pub lat: HistogramSnapshot,
}

/// Per-second completed/failed counts and latency distributions, shared
/// by every generator in a run.
#[derive(Debug, Default)]
pub struct Timeline {
    cells: Vec<Cell>,
}

/// Record `v` into a snapshot using the registry's power-of-two bucket
/// mapping (`HISTOGRAM_BUCKETS` buckets, index = bit width of `v`).
pub fn snapshot_record(h: &mut HistogramSnapshot, v: u64) {
    let bucket = (u64::BITS - v.leading_zeros()) as usize;
    h.buckets[bucket] += 1;
    h.count += 1;
    // The registry's atomic sum wraps; match it exactly.
    h.sum = h.sum.wrapping_add(v);
}

impl Timeline {
    fn cell_at(&mut self, second: usize) -> &mut Cell {
        if self.cells.len() <= second {
            self.cells.resize(second + 1, Cell::default());
        }
        &mut self.cells[second]
    }

    pub fn record_completion(&mut self, second: usize, latency: Nanos) {
        let cell = self.cell_at(second);
        cell.completed += 1;
        snapshot_record(&mut cell.lat, latency);
    }

    pub fn record_failure(&mut self, second: usize) {
        self.cell_at(second).failed += 1;
    }

    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Merge the latency distributions of seconds `[from, to)`.
    pub fn merged_latency(&self, from: usize, to: usize) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for cell in self.cells.iter().take(to.min(self.cells.len())).skip(from) {
            out.merge(&cell.lat);
        }
        out
    }

    /// Completions in seconds `[from, to)`.
    pub fn completed_in(&self, from: usize, to: usize) -> u64 {
        self.cells
            .iter()
            .take(to.min(self.cells.len()))
            .skip(from)
            .map(|c| c.completed)
            .sum()
    }
}

/// Handles every generator records through; cheap to clone.
#[derive(Clone)]
pub struct LoadTelemetry {
    /// Cluster-wide end-to-end latency.
    pub latency: Histogram,
    /// Per doc-partition latency, indexed by partition.
    pub by_partition: Vec<Histogram>,
    /// Latency of requests that crossed a proxy hop, so proxy-path time
    /// can be attributed separately from direct-path time.
    pub proxied: Histogram,
    /// Latency of requests answered without a proxy hop.
    pub direct: Histogram,
    pub timeline: Arc<Mutex<Timeline>>,
}

impl LoadTelemetry {
    /// Create the handles against `registry` for `doc_partitions`
    /// partitions. Histogram names are zero-padded so exports sort in
    /// partition order.
    pub fn new(registry: &Registry, doc_partitions: u16) -> LoadTelemetry {
        LoadTelemetry {
            latency: registry.histogram(CLUSTER, SUBSYSTEM, "latency_ns"),
            by_partition: (0..doc_partitions)
                .map(|p| registry.histogram(CLUSTER, SUBSYSTEM, format!("latency_ns.doc{p:02}")))
                .collect(),
            proxied: registry.histogram(CLUSTER, SUBSYSTEM, "latency_ns.proxied"),
            direct: registry.histogram(CLUSTER, SUBSYSTEM, "latency_ns.direct"),
            timeline: Arc::new(Mutex::new(Timeline::default())),
        }
    }

    /// Record one completed request against `doc_partition`.
    /// `via_proxy` splits the sample into the proxied/direct histograms
    /// so proxy-hop latency is attributable from the same run.
    pub fn record_completion(
        &self,
        now: Nanos,
        doc_partition: u16,
        latency: Nanos,
        via_proxy: bool,
    ) {
        self.latency.record(latency);
        if let Some(h) = self.by_partition.get(doc_partition as usize) {
            h.record(latency);
        }
        if via_proxy {
            self.proxied.record(latency);
        } else {
            self.direct.record(latency);
        }
        self.timeline
            .lock()
            .record_completion((now / tamp_netsim::SECS) as usize, latency);
    }

    pub fn record_failure(&self, now: Nanos) {
        self.timeline
            .lock()
            .record_failure((now / tamp_netsim::SECS) as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_record_matches_registry_buckets() {
        let reg = Registry::new();
        let h = reg.histogram(CLUSTER, SUBSYSTEM, "x");
        let mut manual = HistogramSnapshot::default();
        for v in [0u64, 1, 2, 3, 100, 65_536, u64::MAX] {
            h.record(v);
            snapshot_record(&mut manual, v);
        }
        let from_registry = h.snapshot();
        assert_eq!(manual.buckets, from_registry.buckets);
        assert_eq!(manual.count, from_registry.count);
        assert_eq!(manual.sum, from_registry.sum);
    }

    #[test]
    fn timeline_windows() {
        let mut t = Timeline::default();
        t.record_completion(0, 100);
        t.record_completion(2, 200);
        t.record_completion(2, 300);
        t.record_failure(1);
        assert_eq!(t.completed_in(0, 3), 3);
        assert_eq!(t.completed_in(1, 3), 2);
        assert_eq!(t.cells()[1].failed, 1);
        assert_eq!(t.merged_latency(2, 3).count, 2);
        // Out-of-range windows clamp instead of panicking.
        assert_eq!(t.completed_in(5, 9), 0);
    }
}
