//! The synthetic workload model: user population, arrival process,
//! think times, and the seed-stable Zipfian partition sampler.
//!
//! Everything here is deterministic per seed. The sampler consumes
//! exactly one `u64` per draw from a caller-owned [`rand::rngs::StdRng`]
//! stream, so draw sequences are byte-identical no matter how runs are
//! scheduled across the tamp-par pool.

use rand::rngs::StdRng;
use rand::RngCore;
use tamp_netsim::{Nanos, MILLIS, SECS};

/// Partition-popularity skew of the synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Skew {
    /// Every partition equally popular.
    Uniform,
    /// Zipfian rank-frequency: partition of rank `k` (0-based) is drawn
    /// with probability proportional to `1 / (k+1)^s`.
    Zipf { s: f64 },
}

impl Skew {
    /// Parse the CLI form: `uniform` or `zipf:S` (e.g. `zipf:1.1`).
    pub fn parse(text: &str) -> Result<Skew, String> {
        if text == "uniform" {
            return Ok(Skew::Uniform);
        }
        if let Some(s) = text.strip_prefix("zipf:") {
            let s: f64 = s
                .parse()
                .map_err(|_| format!("bad zipf exponent in --skew {text}"))?;
            if !(0.0..=10.0).contains(&s) {
                return Err(format!("zipf exponent out of range in --skew {text}"));
            }
            return Ok(Skew::Zipf { s });
        }
        Err(format!(
            "unknown --skew {text} (expected `uniform` or `zipf:S`)"
        ))
    }

    /// The Zipf exponent (`uniform` is the `s = 0` degenerate case).
    pub fn exponent(&self) -> f64 {
        match *self {
            Skew::Uniform => 0.0,
            Skew::Zipf { s } => s,
        }
    }
}

/// Open vs closed loop, the two canonical arrival processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalMode {
    /// Arrivals at the population's steady rate regardless of
    /// completions — queues grow without bound past saturation.
    Open,
    /// Each user waits for its response, thinks, then issues the next
    /// request — load self-limits under degradation.
    Closed,
}

/// One generator's slice of the synthetic user population.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Users simulated by this generator.
    pub users: u64,
    /// Mean think time between a user's response and its next request.
    /// Actual think times are uniform in `[mean/2, 3·mean/2)`.
    pub think_mean: Nanos,
    pub mode: ArrivalMode,
    pub skew: Skew,
    /// Arrival-aggregation granularity: users are batched into calendar
    /// ticks of this width instead of one timer per user.
    pub tick: Nanos,
    /// Workload-stream seed, decoupled from the engine seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            users: 100_000,
            think_mean: 100 * SECS,
            mode: ArrivalMode::Closed,
            skew: Skew::Zipf { s: 1.1 },
            tick: 10 * MILLIS,
            seed: 2005,
        }
    }
}

impl WorkloadConfig {
    /// Steady-state request rate of this population (requests/second).
    pub fn steady_rate(&self) -> f64 {
        self.users as f64 / (self.think_mean as f64 / SECS as f64)
    }
}

/// Inverse-CDF Zipfian sampler over a fixed partition count.
///
/// The CDF is precomputed once in 53-bit fixed point; each draw consumes
/// one `u64` and binary-searches the table, so sampling is O(log P) with
/// no floating point on the hot path — and therefore bit-stable across
/// platforms.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// `cdf[k]` = P(rank ≤ k) scaled to `2^53`; last entry is exactly
    /// `2^53` so every 53-bit draw lands in a bucket.
    cdf: Vec<u64>,
    weights: Vec<f64>,
}

const CDF_ONE: u64 = 1 << 53;

impl ZipfSampler {
    /// Sampler over `partitions` ranks with exponent `s` (`s = 0` is
    /// uniform).
    pub fn new(partitions: u16, s: f64) -> ZipfSampler {
        assert!(partitions > 0, "ZipfSampler needs at least one partition");
        let raw: Vec<f64> = (0..partitions)
            .map(|k| 1.0 / ((k + 1) as f64).powf(s))
            .collect();
        let total: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|w| w / total).collect();
        let mut cdf = Vec::with_capacity(partitions as usize);
        let mut cum = 0.0;
        for w in &weights {
            cum += w;
            cdf.push(((cum * CDF_ONE as f64) as u64).min(CDF_ONE));
        }
        *cdf.last_mut().unwrap() = CDF_ONE;
        ZipfSampler { cdf, weights }
    }

    pub fn from_skew(partitions: u16, skew: Skew) -> ZipfSampler {
        ZipfSampler::new(partitions, skew.exponent())
    }

    pub fn partitions(&self) -> u16 {
        self.cdf.len() as u16
    }

    /// Draw one partition rank. Consumes exactly one `u64` from `rng`.
    pub fn sample(&self, rng: &mut StdRng) -> u16 {
        // Same 53-bit mapping the vendored rand crate uses for f64.
        let r = rng.next_u64() >> 11;
        self.cdf.partition_point(|&c| c <= r) as u16
    }

    /// Analytic probability of each rank (for chi-square tests and
    /// capacity planning).
    pub fn probabilities(&self) -> &[f64] {
        &self.weights
    }

    /// Expected count per rank for `n` draws.
    pub fn expected(&self, n: u64) -> Vec<f64> {
        self.weights.iter().map(|w| w * n as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tamp_par::Pool;

    #[test]
    fn skew_parses() {
        assert_eq!(Skew::parse("uniform").unwrap(), Skew::Uniform);
        assert_eq!(Skew::parse("zipf:1.1").unwrap(), Skew::Zipf { s: 1.1 });
        assert!(Skew::parse("zipf:").is_err());
        assert!(Skew::parse("zipf:-3").is_err());
        assert!(Skew::parse("pareto").is_err());
    }

    #[test]
    fn uniform_degenerate_case_is_flat() {
        let z = ZipfSampler::new(8, 0.0);
        for p in z.probabilities() {
            assert!((p - 0.125).abs() < 1e-12);
        }
    }

    /// Satellite: chi-square goodness-of-fit of empirical rank counts
    /// against the analytic Zipf frequencies.
    #[test]
    fn zipf_matches_analytic_rank_frequencies() {
        const PARTS: u16 = 16;
        const DRAWS: u64 = 100_000;
        let z = ZipfSampler::new(PARTS, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; PARTS as usize];
        for _ in 0..DRAWS {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let expected = z.expected(DRAWS);
        // Ranks are ordered: rank 0 must dominate, the tail must thin.
        assert!(counts[0] > counts[PARTS as usize - 1] * 4);
        let chi2: f64 = counts
            .iter()
            .zip(&expected)
            .map(|(&o, &e)| (o as f64 - e).powi(2) / e)
            .sum();
        // 15 degrees of freedom: the 99.9th percentile is ~37.7.
        assert!(chi2 < 37.7, "chi-square {chi2} too large");
    }

    /// Satellite: same-seed draw sequences are byte-identical, and
    /// running the sampler on the tamp-par pool at any width reproduces
    /// the sequential sequence exactly.
    #[test]
    fn draws_are_seed_stable_across_pool_widths() {
        let z = ZipfSampler::new(12, 1.1);
        let draw_block = |seed: u64| -> Vec<u16> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..1000).map(|_| z.sample(&mut rng)).collect()
        };
        let sequential: Vec<Vec<u16>> = (0..8).map(|s| draw_block(s as u64)).collect();
        for jobs in [1usize, 2, 4, 8] {
            let pool = Pool::new(jobs);
            let parallel = pool.ordered_map(8, |i| draw_block(i as u64));
            assert_eq!(parallel, sequential, "jobs={jobs} diverged");
        }
        assert_eq!(draw_block(3), draw_block(3));
    }

    #[test]
    fn sampler_covers_every_partition_eventually() {
        let z = ZipfSampler::new(5, 1.1);
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
