//! Scenario construction: wire generators, proxies, and index/doc
//! providers into a multi-datacenter engine, sized for production-scale
//! populations.
//!
//! Mirrors `tamp_neptune::search::build` but swaps the per-query
//! gateways for [`LoadGenNode`]s and scales the service plane: more
//! partitions, calibrated service times (hundreds of microseconds, not
//! the paper's demo milliseconds) so a million-user population runs at
//! sane utilization.

use crate::generator::{LoadGenConfig, LoadGenNode};
use crate::telemetry::LoadTelemetry;
use crate::workload::WorkloadConfig;
use tamp_membership::{MembershipConfig, Probe};
use tamp_neptune::{ProviderConfig, ProviderNode};
use tamp_netsim::{Engine, EngineConfig, Nanos, ShardingKind, MICROS, MILLIS, SECS};
use tamp_proxy::{ProxyConfig, ProxyNode, RemoteView, VipTable};
use tamp_topology::{generators, HostId};
use tamp_wire::{DcId, NodeId, PartitionSet, ServiceDecl};

/// Knobs for the load scenario.
#[derive(Debug, Clone)]
pub struct LoadScenarioConfig {
    /// Total synthetic users, split evenly across all generators.
    pub users: u64,
    pub workload: WorkloadConfig,
    pub datacenters: usize,
    pub generators_per_dc: usize,
    pub proxies_per_dc: usize,
    /// Replicas per partition per DC.
    pub replicas: usize,
    pub index_partitions: u16,
    pub doc_partitions: u16,
    /// One-way WAN latency between adjacent DCs.
    pub wan_one_way: Nanos,
    /// Service times, calibrated for the default million-user rate.
    pub index_time: Nanos,
    pub doc_time: Nanos,
    /// Engine seed (the workload stream is seeded separately from
    /// `workload.seed`).
    pub seed: u64,
    /// Engine partitioning ([`ShardingKind`]): `Sharded(n)` runs the one
    /// simulation across n per-datacenter shards, byte-identically.
    pub sharding: ShardingKind,
}

impl Default for LoadScenarioConfig {
    fn default() -> Self {
        LoadScenarioConfig {
            users: 1_000_000,
            workload: WorkloadConfig::default(),
            datacenters: 3,
            generators_per_dc: 1,
            proxies_per_dc: 2,
            replicas: 2,
            index_partitions: 4,
            doc_partitions: 12,
            wan_one_way: 45 * MILLIS,
            index_time: 200 * MICROS,
            doc_time: 500 * MICROS,
            seed: 2005,
            sharding: ShardingKind::Sequential,
        }
    }
}

impl LoadScenarioConfig {
    pub fn hosts_per_dc(&self) -> usize {
        self.generators_per_dc
            + self.proxies_per_dc
            + (self.index_partitions as usize + self.doc_partitions as usize) * self.replicas
    }
}

/// A wired-up load scenario.
pub struct LoadScenario {
    pub engine: Engine,
    pub telemetry: LoadTelemetry,
    /// Leader-vote probes per host (`None` only for host roles without
    /// one), in host order — the shape `tamp_chaos::apply_schedule`
    /// expects.
    pub probes: Vec<Option<Probe>>,
    pub dc_hosts: Vec<Vec<HostId>>,
    pub generators: Vec<Vec<HostId>>,
    pub proxies: Vec<Vec<HostId>>,
    pub vips: VipTable,
    pub cfg: LoadScenarioConfig,
}

/// Build the scenario. Call `engine.start()` yourself, then run.
pub fn build(cfg: &LoadScenarioConfig) -> LoadScenario {
    let per_segment = cfg.hosts_per_dc().div_ceil(2);
    let dcs: Vec<(usize, usize)> = (0..cfg.datacenters).map(|_| (2, per_segment)).collect();
    let (topo, dc_hosts) = generators::multi_datacenter(&dcs, cfg.wan_one_way);
    let num_hosts = topo.num_hosts();

    let engine_cfg = EngineConfig {
        series_bucket: SECS,
        metrics: true,
        sharding: cfg.sharding,
        ..Default::default()
    };
    let mut engine = Engine::new(topo, engine_cfg, cfg.seed);
    let telemetry = LoadTelemetry::new(engine.registry(), cfg.doc_partitions);

    let vips = VipTable::new();
    // Same failover pinning as the Fig. 14 scenario: a kill becomes a
    // removal after exactly max_loss × period (no suspicion/quarantine
    // settling on top).
    let membership = MembershipConfig {
        suspicion_window: 0,
        quarantine_window: 0,
        ..MembershipConfig::default()
    };

    let mut probes: Vec<Option<Probe>> = vec![None; num_hosts];
    let mut generators_by_dc = vec![Vec::new(); cfg.datacenters];
    let mut proxies_by_dc = vec![Vec::new(); cfg.datacenters];

    let total_gens = (cfg.datacenters * cfg.generators_per_dc) as u64;
    let mut gen_idx = 0u64;

    for (dc_idx, hosts) in dc_hosts.iter().enumerate() {
        let dc = DcId(dc_idx as u16);
        let remote_dcs: Vec<DcId> = (0..cfg.datacenters)
            .filter(|&d| d != dc_idx)
            .map(|d| DcId(d as u16))
            .collect();
        let mut it = hosts.iter().copied();

        // Generators: each runs an even slice of the population.
        for _ in 0..cfg.generators_per_dc {
            let h = it.next().expect("not enough hosts for generators");
            let base = cfg.users / total_gens;
            let users = base + u64::from(gen_idx < cfg.users % total_gens);
            gen_idx += 1;
            let workload = WorkloadConfig {
                users,
                ..cfg.workload.clone()
            };
            let mut gc = LoadGenConfig::new(membership.clone(), workload);
            gc.index_partitions = cfg.index_partitions;
            gc.doc_partitions = cfg.doc_partitions;
            let node = LoadGenNode::new(NodeId(h.0), gc, telemetry.clone());
            probes[h.0 as usize] = Some(node.probe());
            generators_by_dc[dc_idx].push(h);
            engine.add_actor(h, Box::new(node));
        }

        // Proxies (the first one seeds the DC's virtual IP).
        let remote_view = RemoteView::new();
        for i in 0..cfg.proxies_per_dc {
            let h = it.next().expect("not enough hosts for proxies");
            if i == 0 {
                vips.set(dc, NodeId(h.0));
            }
            let p = ProxyNode::new(
                NodeId(h.0),
                ProxyConfig::new(dc, remote_dcs.clone(), membership.clone()),
                vips.clone(),
                remote_view.clone(),
            );
            probes[h.0 as usize] = Some(p.probe());
            proxies_by_dc[dc_idx].push(h);
            engine.add_actor(h, Box::new(p));
        }

        // Index then doc providers, `replicas` instances per partition.
        for (service, partitions, time) in [
            ("index", cfg.index_partitions, cfg.index_time),
            ("doc", cfg.doc_partitions, cfg.doc_time),
        ] {
            for part in 0..partitions {
                for _ in 0..cfg.replicas {
                    let h = it.next().expect("not enough hosts for providers");
                    let mut m = membership.clone();
                    m.services = vec![ServiceDecl::new(service, PartitionSet::from_iter([part]))];
                    let p = ProviderNode::new(NodeId(h.0), ProviderConfig::new(m, time));
                    probes[h.0 as usize] = Some(p.probe());
                    engine.add_actor(h, Box::new(p));
                }
            }
        }
    }

    LoadScenario {
        engine,
        telemetry,
        probes,
        dc_hosts,
        generators: generators_by_dc,
        proxies: proxies_by_dc,
        vips,
        cfg: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_wires_expected_shape() {
        let cfg = LoadScenarioConfig {
            users: 1000,
            datacenters: 3,
            ..Default::default()
        };
        let s = build(&cfg);
        assert_eq!(s.dc_hosts.len(), 3);
        for dc in 0..3 {
            assert_eq!(s.generators[dc].len(), 1);
            assert_eq!(s.proxies[dc].len(), 2);
            assert_eq!(
                s.vips.get(DcId(dc as u16)),
                Some(NodeId(s.proxies[dc][0].0))
            );
        }
        // Every wired host has a probe (generators, proxies, providers);
        // odd-sized DCs leave the last segment slot empty.
        let wired = cfg.hosts_per_dc() * cfg.datacenters;
        assert_eq!(s.probes.iter().flatten().count(), wired);
    }

    #[test]
    fn closed_loop_completes_requests() {
        let cfg = LoadScenarioConfig {
            users: 500,
            datacenters: 2,
            workload: WorkloadConfig {
                think_mean: 10 * SECS,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut s = build(&cfg);
        s.engine.start();
        s.engine.run_until(40 * SECS);
        let snap = s.engine.registry().snapshot();
        let completed = snap.counter_total("load", "completed");
        let issued = snap.counter_total("load", "issued");
        assert!(issued > 0, "no requests issued");
        assert!(
            completed * 10 >= issued * 9,
            "too many losses: {completed}/{issued}"
        );
        assert!(s.telemetry.latency.snapshot().count > 0);
    }
}
