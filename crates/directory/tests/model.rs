//! Model-based property tests: the directory's incarnation ordering must
//! match a simple reference model under arbitrary event interleavings.

use proptest::prelude::*;
use std::collections::HashMap;
use tamp_directory::{Directory, Provenance};
use tamp_wire::{NodeId, NodeRecord};

/// One scripted operation.
#[derive(Debug, Clone)]
enum Op {
    Join { node: u8, inc: u8 },
    Leave { node: u8, inc: u8 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..6, 1u8..6).prop_map(|(node, inc)| Op::Join { node, inc }),
            (0u8..6, 1u8..6).prop_map(|(node, inc)| Op::Leave { node, inc }),
        ],
        0..40,
    )
}

/// Reference model of the acceptance rules, with an infinite tombstone
/// TTL (we disable expiry by using a single timestamp).
#[derive(Default)]
struct Model {
    live: HashMap<u8, u8>,
    dead: HashMap<u8, u8>,
}

impl Model {
    fn join(&mut self, node: u8, inc: u8) {
        if let Some(&d) = self.dead.get(&node) {
            if inc <= d {
                return;
            }
        }
        let e = self.live.entry(node).or_insert(inc);
        if inc > *e {
            *e = inc;
        }
    }

    fn leave(&mut self, node: u8, inc: u8) {
        let d = self.dead.entry(node).or_insert(0);
        if inc > *d {
            *d = inc;
        }
        if self.live.get(&node).is_some_and(|&l| l <= inc) {
            self.live.remove(&node);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn directory_matches_reference_model(ops in arb_ops()) {
        let mut dir = Directory::new();
        let mut model = Model::default();
        // Freeze time so tombstones never age out: pure ordering rules.
        let now = 0;
        for op in &ops {
            match *op {
                Op::Join { node, inc } => {
                    dir.apply_join(
                        NodeRecord::new(NodeId(node as u32), inc as u64),
                        Provenance::Direct,
                        now,
                    );
                    model.join(node, inc);
                }
                Op::Leave { node, inc } => {
                    dir.apply_leave(NodeId(node as u32), inc as u64, now);
                    model.leave(node, inc);
                }
            }
        }
        // Same live set with the same incarnations.
        let mut got: Vec<(u8, u8)> = dir
            .entries()
            .map(|e| (e.record.node.0 as u8, e.record.incarnation as u8))
            .collect();
        got.sort();
        let mut want: Vec<(u8, u8)> = model.live.iter().map(|(&n, &i)| (n, i)).collect();
        want.sort();
        prop_assert_eq!(got, want, "ops: {:?}", ops);
    }

    /// A join with a strictly higher incarnation always lands, no matter
    /// what history preceded it.
    #[test]
    fn highest_incarnation_always_wins(ops in arb_ops(), node in 0u8..6) {
        let mut dir = Directory::new();
        for op in &ops {
            match *op {
                Op::Join { node, inc } => {
                    dir.apply_join(
                        NodeRecord::new(NodeId(node as u32), inc as u64),
                        Provenance::Direct,
                        0,
                    );
                }
                Op::Leave { node, inc } => {
                    dir.apply_leave(NodeId(node as u32), inc as u64, 0);
                }
            }
        }
        let applied = dir.apply_join(
            NodeRecord::new(NodeId(node as u32), 100),
            Provenance::Direct,
            0,
        );
        prop_assert!(applied.changed());
        prop_assert!(dir.contains(NodeId(node as u32)));
    }

    /// Tombstones age out: after the TTL, a same-incarnation join is
    /// accepted again (soft-state healing).
    #[test]
    fn tombstones_expire(inc in 1u64..10, ttl in 1u64..1_000_000) {
        let mut dir = Directory::new();
        dir.set_tombstone_ttl(ttl);
        dir.apply_leave(NodeId(1), inc, 0);
        let rec = NodeRecord::new(NodeId(1), inc);
        prop_assert!(!dir.apply_join(rec.clone(), Provenance::Direct, ttl - 1).changed());
        prop_assert!(dir.apply_join(rec, Provenance::Direct, ttl).changed());
    }

    /// Differential digest lock: after *every* mutation — joins (direct
    /// and relayed), leaves/tombstones, reconciliation removals, expiry
    /// cascades, relayed purges — the incrementally-maintained digest
    /// equals a from-scratch rescan of the entries map, and stays
    /// sorted by node id.
    #[test]
    fn incremental_digest_matches_rescan(ops in arb_digest_ops()) {
        let mut dir = Directory::new();
        let mut now = 0u64;
        for op in &ops {
            now += 1;
            match *op {
                DigestOp::Join { node, inc, relayer } => {
                    let prov = match relayer {
                        Some(r) => Provenance::Relayed(NodeId(r as u32)),
                        None => Provenance::Direct,
                    };
                    dir.apply_join(NodeRecord::new(NodeId(node as u32), inc as u64), prov, now);
                }
                DigestOp::Leave { node, inc } => {
                    dir.apply_leave(NodeId(node as u32), inc as u64, now);
                }
                DigestOp::Remove { node } => {
                    dir.remove(NodeId(node as u32));
                }
                DigestOp::Refresh { node } => {
                    dir.refresh(NodeId(node as u32), now);
                }
                DigestOp::Expire { age } => {
                    dir.expire(now, |_| age as u64);
                }
                DigestOp::Purge { relayer } => {
                    dir.purge_relayed_by(NodeId(relayer as u32));
                }
            }
            prop_assert!(dir.digest_is_coherent(), "after {:?}", op);
            let rescan = dir.rescan_digest();
            prop_assert_eq!(dir.digest(), rescan.as_slice(), "after {:?}", op);
            prop_assert!(
                dir.digest().windows(2).all(|w| w[0].node < w[1].node),
                "digest not strictly sorted after {:?}", op
            );
        }
    }
}

/// Scripted operation for the digest differential: every mutation class
/// the directory exposes.
#[derive(Debug, Clone)]
enum DigestOp {
    Join {
        node: u8,
        inc: u8,
        relayer: Option<u8>,
    },
    Leave {
        node: u8,
        inc: u8,
    },
    Remove {
        node: u8,
    },
    Refresh {
        node: u8,
    },
    Expire {
        age: u8,
    },
    Purge {
        relayer: u8,
    },
}

fn arb_digest_ops() -> impl Strategy<Value = Vec<DigestOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..8, 1u8..6, proptest::option::of(0u8..8))
                .prop_map(|(node, inc, relayer)| DigestOp::Join { node, inc, relayer }),
            (0u8..8, 1u8..6).prop_map(|(node, inc)| DigestOp::Leave { node, inc }),
            (0u8..8).prop_map(|node| DigestOp::Remove { node }),
            (0u8..8).prop_map(|node| DigestOp::Refresh { node }),
            (1u8..40).prop_map(|age| DigestOp::Expire { age }),
            (0u8..8).prop_map(|relayer| DigestOp::Purge { relayer }),
        ],
        0..60,
    )
}
