//! Model-based property tests: the directory's incarnation ordering must
//! match a simple reference model under arbitrary event interleavings.

use proptest::prelude::*;
use std::collections::HashMap;
use tamp_directory::{Directory, Provenance};
use tamp_wire::{NodeId, NodeRecord};

/// One scripted operation.
#[derive(Debug, Clone)]
enum Op {
    Join { node: u8, inc: u8 },
    Leave { node: u8, inc: u8 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..6, 1u8..6).prop_map(|(node, inc)| Op::Join { node, inc }),
            (0u8..6, 1u8..6).prop_map(|(node, inc)| Op::Leave { node, inc }),
        ],
        0..40,
    )
}

/// Reference model of the acceptance rules, with an infinite tombstone
/// TTL (we disable expiry by using a single timestamp).
#[derive(Default)]
struct Model {
    live: HashMap<u8, u8>,
    dead: HashMap<u8, u8>,
}

impl Model {
    fn join(&mut self, node: u8, inc: u8) {
        if let Some(&d) = self.dead.get(&node) {
            if inc <= d {
                return;
            }
        }
        let e = self.live.entry(node).or_insert(inc);
        if inc > *e {
            *e = inc;
        }
    }

    fn leave(&mut self, node: u8, inc: u8) {
        let d = self.dead.entry(node).or_insert(0);
        if inc > *d {
            *d = inc;
        }
        if self.live.get(&node).is_some_and(|&l| l <= inc) {
            self.live.remove(&node);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn directory_matches_reference_model(ops in arb_ops()) {
        let mut dir = Directory::new();
        let mut model = Model::default();
        // Freeze time so tombstones never age out: pure ordering rules.
        let now = 0;
        for op in &ops {
            match *op {
                Op::Join { node, inc } => {
                    dir.apply_join(
                        NodeRecord::new(NodeId(node as u32), inc as u64),
                        Provenance::Direct,
                        now,
                    );
                    model.join(node, inc);
                }
                Op::Leave { node, inc } => {
                    dir.apply_leave(NodeId(node as u32), inc as u64, now);
                    model.leave(node, inc);
                }
            }
        }
        // Same live set with the same incarnations.
        let mut got: Vec<(u8, u8)> = dir
            .entries()
            .map(|e| (e.record.node.0 as u8, e.record.incarnation as u8))
            .collect();
        got.sort();
        let mut want: Vec<(u8, u8)> = model.live.iter().map(|(&n, &i)| (n, i)).collect();
        want.sort();
        prop_assert_eq!(got, want, "ops: {:?}", ops);
    }

    /// A join with a strictly higher incarnation always lands, no matter
    /// what history preceded it.
    #[test]
    fn highest_incarnation_always_wins(ops in arb_ops(), node in 0u8..6) {
        let mut dir = Directory::new();
        for op in &ops {
            match *op {
                Op::Join { node, inc } => {
                    dir.apply_join(
                        NodeRecord::new(NodeId(node as u32), inc as u64),
                        Provenance::Direct,
                        0,
                    );
                }
                Op::Leave { node, inc } => {
                    dir.apply_leave(NodeId(node as u32), inc as u64, 0);
                }
            }
        }
        let applied = dir.apply_join(
            NodeRecord::new(NodeId(node as u32), 100),
            Provenance::Direct,
            0,
        );
        prop_assert!(applied.changed());
        prop_assert!(dir.contains(NodeId(node as u32)));
    }

    /// Tombstones age out: after the TTL, a same-incarnation join is
    /// accepted again (soft-state healing).
    #[test]
    fn tombstones_expire(inc in 1u64..10, ttl in 1u64..1_000_000) {
        let mut dir = Directory::new();
        dir.set_tombstone_ttl(ttl);
        dir.apply_leave(NodeId(1), inc, 0);
        let rec = NodeRecord::new(NodeId(1), inc);
        prop_assert!(!dir.apply_join(rec.clone(), Provenance::Direct, ttl - 1).changed());
        prop_assert!(dir.apply_join(rec, Provenance::Direct, ttl).changed());
    }
}
