//! Shared-memory-style concurrent access to the directory.
//!
//! In the paper's implementation the membership daemon publishes the
//! yellow pages into a shared-memory block so that "service clients that
//! may reside in different processes" can read it without IPC round trips
//! (§6.1, Fig. 10). The Rust analogue is an `Arc<RwLock<Directory>>`: the
//! protocol driver holds a [`SharedDirectory`] (writer), applications hold
//! cheap [`DirectoryClient`] handles (readers) — many concurrent readers,
//! short writer critical sections, same access pattern as the shm block.

use crate::{Directory, LookupQuery, Machine};
use parking_lot::RwLock;
use std::sync::Arc;
use tamp_wire::NodeId;

/// Writer handle owned by the membership service.
#[derive(Debug, Clone, Default)]
pub struct SharedDirectory {
    inner: Arc<RwLock<Directory>>,
    /// Bumped on every change so clients can cheaply detect staleness.
    version: Arc<parking_lot::Mutex<u64>>,
}

impl SharedDirectory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f` with mutable access; bumps the version if `f` returns true
    /// (i.e. it changed something).
    pub fn update<R>(&self, f: impl FnOnce(&mut Directory) -> (bool, R)) -> R {
        let mut guard = self.inner.write();
        let (changed, r) = f(&mut guard);
        drop(guard);
        if changed {
            *self.version.lock() += 1;
        }
        r
    }

    /// Run `f` with read access.
    pub fn read<R>(&self, f: impl FnOnce(&Directory) -> R) -> R {
        f(&self.inner.read())
    }

    /// Create a read-only client handle (the paper's `MClient`).
    pub fn client(&self) -> DirectoryClient {
        DirectoryClient {
            inner: Arc::clone(&self.inner),
            version: Arc::clone(&self.version),
        }
    }

    /// Current change-version.
    pub fn version(&self) -> u64 {
        *self.version.lock()
    }
}

/// Read-only handle used by service/consumer code; clone freely across
/// threads.
#[derive(Debug, Clone)]
pub struct DirectoryClient {
    inner: Arc<RwLock<Directory>>,
    version: Arc<parking_lot::Mutex<u64>>,
}

impl DirectoryClient {
    /// The paper's `lookup_service`: regex service name + partition list.
    pub fn lookup_service(
        &self,
        service: &str,
        partition: &str,
    ) -> Result<Vec<Machine>, crate::lookup::QueryError> {
        let q = LookupQuery::new(service, partition)?;
        Ok(self.inner.read().lookup(&q))
    }

    /// Lookup with a pre-compiled query (hot-path form).
    pub fn lookup(&self, query: &LookupQuery) -> Vec<Machine> {
        self.inner.read().lookup(query)
    }

    /// Resolve `(service, partition)` through the current view: the node
    /// ids currently believed to host that service partition, in
    /// directory order. The router-facing form of
    /// [`lookup_service`](Self::lookup_service): malformed patterns and
    /// unknown services both resolve to an empty candidate set instead
    /// of an error, which is what request routing wants.
    pub fn resolve(&self, service: &str, partition: u16) -> Vec<NodeId> {
        self.lookup_service(service, &partition.to_string())
            .unwrap_or_default()
            .into_iter()
            .map(|m| m.node)
            .collect()
    }

    /// Is this node currently believed alive?
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.inner.read().contains(node)
    }

    /// Number of live members.
    pub fn member_count(&self) -> usize {
        self.inner.read().len()
    }

    /// Change-version; increments whenever membership changes.
    pub fn version(&self) -> u64 {
        *self.version.lock()
    }

    /// Arbitrary read access.
    pub fn read<R>(&self, f: impl FnOnce(&Directory) -> R) -> R {
        f(&self.inner.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Provenance;
    use tamp_wire::{NodeRecord, PartitionSet, ServiceDecl};

    fn record(id: u32) -> NodeRecord {
        NodeRecord::new(NodeId(id), 1)
            .with_service(ServiceDecl::new("http", PartitionSet::from_iter([0])))
    }

    #[test]
    fn client_sees_writer_updates() {
        let shared = SharedDirectory::new();
        let client = shared.client();
        assert_eq!(client.member_count(), 0);
        shared.update(|d| (d.apply_join(record(1), Provenance::Direct, 0).changed(), ()));
        assert_eq!(client.member_count(), 1);
        assert!(client.is_alive(NodeId(1)));
    }

    #[test]
    fn version_bumps_only_on_change() {
        let shared = SharedDirectory::new();
        let v0 = shared.version();
        shared.update(|d| (d.apply_join(record(1), Provenance::Direct, 0).changed(), ()));
        let v1 = shared.version();
        assert!(v1 > v0);
        // Idempotent re-apply: no version bump.
        shared.update(|d| (d.apply_join(record(1), Provenance::Direct, 1).changed(), ()));
        assert_eq!(shared.version(), v1);
    }

    #[test]
    fn client_lookup_from_other_thread() {
        let shared = SharedDirectory::new();
        shared.update(|d| (d.apply_join(record(3), Provenance::Direct, 0).changed(), ()));
        let client = shared.client();
        let handle = std::thread::spawn(move || client.lookup_service("http", "0").unwrap().len());
        assert_eq!(handle.join().unwrap(), 1);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let shared = SharedDirectory::new();
        let mut readers = Vec::new();
        for _ in 0..4 {
            let c = shared.client();
            readers.push(std::thread::spawn(move || {
                let mut last = 0;
                for _ in 0..200 {
                    let n = c.member_count();
                    // Membership only grows in this test.
                    assert!(n >= last);
                    last = n;
                }
            }));
        }
        for i in 0..100 {
            shared.update(|d| (d.apply_join(record(i), Provenance::Direct, 0).changed(), ()));
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(shared.client().member_count(), 100);
    }
}
