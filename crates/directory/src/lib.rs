//! # tamp-directory — the membership "yellow page" directory
//!
//! Every node in a TAMP cluster keeps a full local copy of the service
//! directory: one [`Entry`] per known node, holding its yellow-page
//! [`NodeRecord`] (services, partitions, machine attributes), how the
//! entry got here (heard directly vs relayed by a group leader), and when
//! it was last refreshed.
//!
//! Key protocol rules implemented here:
//!
//! * **Incarnation ordering** — a record with a higher incarnation always
//!   wins; a `Leave` only kills the incarnation it names, so a stale death
//!   report cannot cancel a newer rejoin.
//! * **Relayed lifetimes** — "membership information relayed by a group
//!   leader has the same life time as the leader itself" (§3.1.2). When a
//!   relayer is purged, everything it relayed goes with it, which is what
//!   lets the protocol detect switch/partition failures quickly.
//! * **Soft state** — entries expire unless refreshed; expiry deadlines
//!   are supplied by the caller because they are level-dependent in the
//!   hierarchical protocol.
//!
//! The lookup side ([`Directory::lookup`]) implements the paper's §5 API:
//! regex matching on the service name and on the partition list.

mod lookup;
mod shared;

pub use lookup::{LookupQuery, Machine};
pub use shared::{DirectoryClient, SharedDirectory};

use std::collections::BTreeMap;
use tamp_wire::{DigestEntry, MemberEvent, NodeId, NodeRecord, RelayedRecord, ServiceAvail};

/// Nanosecond timestamps, matching `tamp_topology::Nanos`.
pub type Nanos = u64;

/// How an entry is known to this node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// This entry is the local node itself.
    Local,
    /// Heard directly (shares a multicast group with us).
    Direct,
    /// Relayed by a group leader; carries the relayer's id.
    Relayed(NodeId),
}

impl Provenance {
    pub fn relayer(&self) -> Option<NodeId> {
        match self {
            Provenance::Relayed(n) => Some(*n),
            _ => None,
        }
    }
}

/// One directory entry.
#[derive(Debug, Clone)]
pub struct Entry {
    pub record: NodeRecord,
    pub provenance: Provenance,
    /// Last time a heartbeat or update touched this entry.
    pub last_refresh: Nanos,
}

/// Result of applying an event to the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// The directory changed (new node, newer incarnation, or removal).
    Changed,
    /// Event was stale or redundant; directory unchanged. Idempotent
    /// redundant delivery is a feature: "because the operation caused by
    /// an update message at each node is idempotent, redundant messages
    /// will not cause confusion" (§3.1.1).
    Ignored,
}

impl Applied {
    pub fn changed(self) -> bool {
        self == Applied::Changed
    }
}

/// The yellow-page directory: complete view of cluster membership.
#[derive(Debug, Clone)]
pub struct Directory {
    entries: BTreeMap<NodeId, Entry>,
    /// Incarnations known dead: `dead[n]` is the highest incarnation of
    /// `n` declared dead plus when it was declared. Records must exceed
    /// the incarnation to be accepted while the tombstone is fresh.
    dead: BTreeMap<NodeId, (u64, Nanos)>,
    /// How long a death declaration suppresses same-incarnation rejoins.
    /// Finite TTL keeps the directory soft-state: after a false positive
    /// (e.g. a healed partition), the node's own heartbeats re-add it
    /// once the tombstone ages out, without requiring re-incarnation.
    tombstone_ttl: Nanos,
    /// Anti-entropy digest, maintained incrementally: one `(node,
    /// incarnation)` pair per live entry, sorted by node id (the same
    /// order the `entries` map iterates in). Every mutation path —
    /// insert, incarnation bump, leave/tombstone, reconciliation
    /// removal, expiry cascade, relayed purge — keeps it in sync, so
    /// [`Directory::digest`] is a borrow instead of an O(members)
    /// rescan per anti-entropy tick. Same-incarnation refreshes and
    /// content republishes do not touch it: digest identity is the
    /// `(node, incarnation)` pair only.
    digest: Vec<DigestEntry>,
}

impl Default for Directory {
    fn default() -> Self {
        Directory {
            entries: BTreeMap::new(),
            dead: BTreeMap::new(),
            tombstone_ttl: DEFAULT_TOMBSTONE_TTL,
            digest: Vec::new(),
        }
    }
}

/// Default [`Directory::set_tombstone_ttl`]: 15 s — comfortably longer
/// than update-propagation time (so in-flight stale leaves stay
/// suppressed) but short enough that partition false-positives heal fast.
pub const DEFAULT_TOMBSTONE_TTL: Nanos = 15_000_000_000;

impl Directory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the tombstone TTL (0 disables suppression entirely).
    pub fn set_tombstone_ttl(&mut self, ttl: Nanos) {
        self.tombstone_ttl = ttl;
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Live node ids, unordered.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.keys().copied()
    }

    /// Look up one entry.
    pub fn get(&self, node: NodeId) -> Option<&Entry> {
        self.entries.get(&node)
    }

    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.contains_key(&node)
    }

    /// All entries, in `NodeId` order. The ordered backing map is a
    /// determinism requirement, not a convenience: iteration order here
    /// reaches digests, relay cascades, and expiry scans, and must not
    /// vary by process or thread.
    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }

    /// Insert or refresh a record.
    ///
    /// Acceptance rules, in order:
    /// 1. rejected if its incarnation was already declared dead;
    /// 2. accepted as [`Applied::Changed`] if the node is unknown or the
    ///    incarnation is newer, or (same incarnation) the record content
    ///    differs (a node republished its services via `update_value`);
    /// 3. otherwise refreshes `last_refresh` (and upgrades provenance
    ///    from relayed to direct if we now hear it ourselves) but reports
    ///    [`Applied::Ignored`].
    pub fn apply_join(
        &mut self,
        record: NodeRecord,
        provenance: Provenance,
        now: Nanos,
    ) -> Applied {
        // `NodeRecord` clones are an Arc bump (copy-on-write payload),
        // so routing through the generic path costs nothing extra.
        self.apply_join_with(
            record.node,
            record.incarnation,
            provenance,
            now,
            || record.clone(),
            |e| *e == record,
        )
    }

    /// Generic form of [`Directory::apply_join`]: the acceptance rules
    /// run on `(node, incarnation)` alone, and the record is only
    /// produced — via `make_record` — when it will actually be stored.
    /// `same` is consulted on a same-incarnation collision and must
    /// answer "is the offered record content-identical to this one?";
    /// a `true` must imply `make_record()` equals the existing record.
    ///
    /// This is the single implementation both the owned path and the
    /// borrowed wire-view path go through: a zero-copy caller passes
    /// `make_record = || view.to_record()` and `same = |e|
    /// view.matches(e)`, and skips materialization entirely on the
    /// (dominant) same-incarnation refresh case. A conservative `same`
    /// that answers `false` is safe: the record is materialized and
    /// compared-by-storage, converging to the same final state.
    pub fn apply_join_with(
        &mut self,
        node: NodeId,
        incarnation: u64,
        provenance: Provenance,
        now: Nanos,
        make_record: impl FnOnce() -> NodeRecord,
        same: impl FnOnce(&NodeRecord) -> bool,
    ) -> Applied {
        if let Some(&(dead_inc, at)) = self.dead.get(&node) {
            if incarnation <= dead_inc && now.saturating_sub(at) < self.tombstone_ttl {
                return Applied::Ignored;
            }
        }
        let applied = match self.entries.get_mut(&node) {
            None => {
                let record = make_record();
                debug_assert_eq!((record.node, record.incarnation), (node, incarnation));
                self.entries.insert(
                    node,
                    Entry {
                        record,
                        provenance,
                        last_refresh: now,
                    },
                );
                self.digest_upsert(node, incarnation);
                Applied::Changed
            }
            Some(e) => {
                if incarnation > e.record.incarnation
                    || (incarnation == e.record.incarnation && !same(&e.record))
                {
                    let record = make_record();
                    debug_assert_eq!((record.node, record.incarnation), (node, incarnation));
                    let inc_changed = e.record.incarnation != incarnation;
                    e.record = record;
                    e.provenance = provenance;
                    e.last_refresh = now;
                    if inc_changed {
                        self.digest_upsert(node, incarnation);
                    }
                    Applied::Changed
                } else if incarnation == e.record.incarnation {
                    e.last_refresh = now;
                    // Provenance re-stamping: relayed knowledge may be
                    // upgraded to direct, or re-attributed to a new
                    // relayer (the takeover leader re-announcing its
                    // directory). Direct knowledge never downgrades to
                    // relayed — we keep detecting the failure ourselves.
                    if matches!(e.provenance, Provenance::Relayed(_))
                        && !matches!(provenance, Provenance::Local)
                    {
                        e.provenance = provenance;
                    }
                    Applied::Ignored
                } else {
                    Applied::Ignored
                }
            }
        };
        self.debug_assert_digest_coherent();
        applied
    }

    /// Declare `node`'s given incarnation dead. A stale leave (for an
    /// incarnation older than the live record) is ignored.
    pub fn apply_leave(&mut self, node: NodeId, incarnation: u64, now: Nanos) -> Applied {
        let dead = self.dead.entry(node).or_insert((0, now));
        if incarnation >= dead.0 {
            *dead = (incarnation, now);
        }
        let applied = match self.entries.get(&node) {
            Some(e) if e.record.incarnation <= incarnation => {
                self.entries.remove(&node);
                self.digest_remove(node);
                Applied::Changed
            }
            _ => Applied::Ignored,
        };
        self.debug_assert_digest_coherent();
        applied
    }

    /// Apply a wire event.
    pub fn apply_event(&mut self, ev: &MemberEvent, provenance: Provenance, now: Nanos) -> Applied {
        match ev {
            MemberEvent::Join(r) => self.apply_join(r.clone(), provenance, now),
            MemberEvent::Leave(n, inc) => self.apply_leave(*n, *inc, now),
            // Suspicion is a membership-layer state, not a directory
            // change: the suspect stays in the yellow pages (and thus
            // remains resolvable) until the suspicion is confirmed as a
            // Leave. The node state machine tracks the pending suspicion.
            MemberEvent::Suspect(..) => Applied::Ignored,
            // Cut-detection alerts are likewise a membership-layer
            // signal (one reporter's vote); the subject stays resolvable
            // until the aggregated cut is confirmed as a Leave.
            MemberEvent::Alert { .. } => Applied::Ignored,
            // A refutation carries a full record at a (usually bumped)
            // incarnation; directory-wise it is a join/refresh.
            MemberEvent::Refute(r) => self.apply_join(r.clone(), provenance, now),
        }
    }

    /// The incarnation of `node` most recently declared dead, if that
    /// declaration is still fresh (within the tombstone TTL). Lets the
    /// protocol push death knowledge back at peers that still advertise
    /// the node (digest reconciliation).
    pub fn fresh_tombstone(&self, node: NodeId, now: Nanos) -> Option<u64> {
        self.dead
            .get(&node)
            .and_then(|&(inc, at)| (now.saturating_sub(at) < self.tombstone_ttl).then_some(inc))
    }

    /// Raw tombstone record for `node`: `(incarnation, declared_at)`.
    pub fn tombstone_of(&self, node: NodeId) -> Option<(u64, Nanos)> {
        self.dead.get(&node).copied()
    }

    /// The configured tombstone TTL.
    pub fn tombstone_ttl(&self) -> Nanos {
        self.tombstone_ttl
    }

    /// Remove an entry without recording a tombstone — used by digest
    /// reconciliation, where the node may well be alive and simply no
    /// longer vouched for by this relayer.
    pub fn remove(&mut self, node: NodeId) -> Option<NodeRecord> {
        let removed = self.entries.remove(&node).map(|e| e.record);
        if removed.is_some() {
            self.digest_remove(node);
        }
        self.debug_assert_digest_coherent();
        removed
    }

    /// Touch `node`'s entry (heartbeat received) without changing content.
    /// Returns false if the node is unknown.
    pub fn refresh(&mut self, node: NodeId, now: Nanos) -> bool {
        match self.entries.get_mut(&node) {
            Some(e) => {
                if now > e.last_refresh {
                    e.last_refresh = now;
                }
                true
            }
            None => false,
        }
    }

    /// Remove every entry whose age exceeds the deadline computed by
    /// `deadline_for`, then cascade: entries relayed by a node removed in
    /// the same sweep are removed too (repeat to fixpoint). Returns the
    /// removed records (so the caller can announce departures).
    pub fn expire<F>(&mut self, now: Nanos, deadline_for: F) -> Vec<NodeRecord>
    where
        F: FnMut(&Entry) -> Nanos,
    {
        self.expire_with_next(now, deadline_for).0
    }

    /// Like [`Directory::expire`], but also returns the earliest absolute
    /// time at which a *surviving* entry could expire (`u64::MAX` if every
    /// survivor has an infinite deadline). Callers use it to skip the
    /// full-directory scan until something can actually rot — the scan is
    /// O(members) and at 10k nodes dominates the sweep if run blindly.
    pub fn expire_with_next<F>(
        &mut self,
        now: Nanos,
        mut deadline_for: F,
    ) -> (Vec<NodeRecord>, Nanos)
    where
        F: FnMut(&Entry) -> Nanos,
    {
        let mut removed = Vec::new();
        let mut next_due = u64::MAX;
        let stale: Vec<NodeId> = self
            .entries
            .iter()
            .filter(|(_, e)| {
                if matches!(e.provenance, Provenance::Local) {
                    return false;
                }
                let deadline = deadline_for(e);
                if now.saturating_sub(e.last_refresh) >= deadline {
                    true
                } else {
                    if deadline != u64::MAX {
                        next_due = next_due.min(e.last_refresh.saturating_add(deadline));
                    }
                    false
                }
            })
            .map(|(&n, _)| n)
            .collect();
        let mut frontier = stale;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for n in frontier {
                if let Some(e) = self.entries.remove(&n) {
                    self.digest_remove(n);
                    // Cascade to everything this node relayed to us.
                    for (&m, me) in &self.entries {
                        if me.provenance.relayer() == Some(n) {
                            next.push(m);
                        }
                    }
                    removed.push(e.record);
                }
            }
            frontier = next;
        }
        self.debug_assert_digest_coherent();
        (removed, next_due)
    }

    /// Remove every entry relayed by `relayer` ("the membership
    /// information relayed by a group leader has the same life time as the
    /// leader itself"). Cascades like [`Directory::expire`]. Does not
    /// remove `relayer` itself.
    pub fn purge_relayed_by(&mut self, relayer: NodeId) -> Vec<NodeRecord> {
        let mut removed = Vec::new();
        let mut frontier = vec![relayer];
        while let Some(r) = frontier.pop() {
            let victims: Vec<NodeId> = self
                .entries
                .iter()
                .filter(|(_, e)| e.provenance.relayer() == Some(r))
                .map(|(&n, _)| n)
                .collect();
            for v in victims {
                if let Some(e) = self.entries.remove(&v) {
                    self.digest_remove(v);
                    removed.push(e.record);
                    frontier.push(v);
                }
            }
        }
        self.debug_assert_digest_coherent();
        removed
    }

    /// Snapshot all entries as wire records with their relay provenance,
    /// for bootstrap/sync responses.
    pub fn snapshot(&self) -> Vec<RelayedRecord> {
        self.entries
            .values()
            .map(|e| RelayedRecord {
                record: e.record.clone(),
                relayed_by: e.provenance.relayer(),
            })
            .collect()
    }

    /// Aggregate per-service availability for the proxy summary: one
    /// [`ServiceAvail`] per service name, with the union of partitions and
    /// the instance count, sorted by name for deterministic comparison.
    pub fn service_summary(&self) -> Vec<ServiceAvail> {
        use std::collections::BTreeMap;
        let mut agg: BTreeMap<&str, (Vec<u16>, u16)> = BTreeMap::new();
        for e in self.entries.values() {
            for s in &e.record.services {
                let slot = agg.entry(s.name.as_str()).or_default();
                slot.0.extend(s.partitions.iter());
                slot.1 += 1;
            }
        }
        agg.into_iter()
            .map(|(name, (parts, instances))| ServiceAvail {
                name: name.to_string(),
                partitions: tamp_wire::PartitionSet::from_iter(parts),
                instances,
            })
            .collect()
    }

    /// The anti-entropy digest: one `(node, incarnation)` pair per live
    /// entry, sorted by node id. Maintained incrementally by every
    /// mutation, so this is a borrow — no per-tick rescan.
    pub fn digest(&self) -> &[DigestEntry] {
        &self.digest
    }

    /// Reference implementation of [`Directory::digest`]: rebuild the
    /// digest from scratch by scanning the entries map. Used by the
    /// differential tests (and the coherence debug-assert) to pin the
    /// incremental digest against first principles.
    pub fn rescan_digest(&self) -> Vec<DigestEntry> {
        self.entries
            .iter()
            .map(|(&node, e)| DigestEntry {
                node,
                incarnation: e.record.incarnation,
            })
            .collect()
    }

    /// True iff the incremental digest matches a from-scratch rescan.
    pub fn digest_is_coherent(&self) -> bool {
        self.digest.len() == self.entries.len()
            && self
                .digest
                .iter()
                .zip(self.entries.iter())
                .all(|(d, (&n, e))| d.node == n && d.incarnation == e.record.incarnation)
    }

    /// Insert or overwrite `node`'s digest entry, preserving sort order.
    fn digest_upsert(&mut self, node: NodeId, incarnation: u64) {
        match self.digest.binary_search_by_key(&node, |d| d.node) {
            Ok(i) => self.digest[i].incarnation = incarnation,
            Err(i) => self.digest.insert(i, DigestEntry { node, incarnation }),
        }
    }

    fn digest_remove(&mut self, node: NodeId) {
        if let Ok(i) = self.digest.binary_search_by_key(&node, |d| d.node) {
            self.digest.remove(i);
        }
    }

    /// Debug-profile tripwire: every mutation re-checks the incremental
    /// digest against the entries map, so the whole chaos/property suite
    /// (which runs in the debug profile) exercises the invariant after
    /// every mutation batch. Release builds compile this away.
    fn debug_assert_digest_coherent(&self) {
        debug_assert!(
            self.digest_is_coherent(),
            "incremental digest diverged from entries: digest={:?} rescan={:?}",
            self.digest,
            self.rescan_digest()
        );
    }

    /// Forget the dead-incarnation memory for nodes no longer present —
    /// bounded-memory hygiene for long-running simulations. Retains
    /// tombstones for live nodes (still needed for ordering).
    pub fn compact_tombstones(&mut self) {
        let entries = &self.entries;
        self.dead.retain(|n, _| entries.contains_key(n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_wire::{PartitionSet, ServiceDecl};

    fn rec(id: u32, inc: u64) -> NodeRecord {
        NodeRecord::new(NodeId(id), inc)
            .with_service(ServiceDecl::new("svc", PartitionSet::from_iter([0])))
    }

    #[test]
    fn join_then_get() {
        let mut d = Directory::new();
        assert!(d.apply_join(rec(1, 1), Provenance::Direct, 10).changed());
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(NodeId(1)).unwrap().last_refresh, 10);
        assert!(d.contains(NodeId(1)));
    }

    #[test]
    fn duplicate_join_is_idempotent_refresh() {
        let mut d = Directory::new();
        d.apply_join(rec(1, 1), Provenance::Direct, 10);
        let r = d.apply_join(rec(1, 1), Provenance::Direct, 20);
        assert_eq!(r, Applied::Ignored);
        assert_eq!(d.get(NodeId(1)).unwrap().last_refresh, 20);
    }

    #[test]
    fn newer_incarnation_wins() {
        let mut d = Directory::new();
        d.apply_join(rec(1, 2), Provenance::Direct, 0);
        assert_eq!(
            d.apply_join(rec(1, 1), Provenance::Direct, 5),
            Applied::Ignored
        );
        assert!(d.apply_join(rec(1, 3), Provenance::Direct, 5).changed());
        assert_eq!(d.get(NodeId(1)).unwrap().record.incarnation, 3);
    }

    #[test]
    fn same_incarnation_content_change_is_change() {
        let mut d = Directory::new();
        d.apply_join(rec(1, 1), Provenance::Direct, 0);
        let updated = rec(1, 1).with_attr("load", "0.5");
        assert!(d.apply_join(updated, Provenance::Direct, 1).changed());
    }

    #[test]
    fn leave_removes_and_blocks_stale_rejoin() {
        let mut d = Directory::new();
        d.apply_join(rec(1, 1), Provenance::Direct, 0);
        assert!(d.apply_leave(NodeId(1), 1, 1).changed());
        assert!(d.is_empty());
        // Same-incarnation rejoin rejected; newer accepted.
        assert_eq!(
            d.apply_join(rec(1, 1), Provenance::Direct, 2),
            Applied::Ignored
        );
        assert!(d.apply_join(rec(1, 2), Provenance::Direct, 2).changed());
    }

    #[test]
    fn stale_leave_does_not_kill_newer_incarnation() {
        let mut d = Directory::new();
        d.apply_join(rec(1, 5), Provenance::Direct, 0);
        assert_eq!(d.apply_leave(NodeId(1), 3, 1), Applied::Ignored);
        assert!(d.contains(NodeId(1)));
    }

    #[test]
    fn leave_unknown_node_records_tombstone() {
        let mut d = Directory::new();
        assert_eq!(d.apply_leave(NodeId(9), 4, 0), Applied::Ignored);
        // Join of that incarnation later is rejected.
        assert_eq!(
            d.apply_join(rec(9, 4), Provenance::Direct, 1),
            Applied::Ignored
        );
        assert!(d.apply_join(rec(9, 5), Provenance::Direct, 1).changed());
    }

    #[test]
    fn refresh_touches_known_only() {
        let mut d = Directory::new();
        d.apply_join(rec(1, 1), Provenance::Direct, 0);
        assert!(d.refresh(NodeId(1), 7));
        assert!(!d.refresh(NodeId(2), 7));
        assert_eq!(d.get(NodeId(1)).unwrap().last_refresh, 7);
    }

    #[test]
    fn refresh_never_moves_time_backwards() {
        let mut d = Directory::new();
        d.apply_join(rec(1, 1), Provenance::Direct, 10);
        d.refresh(NodeId(1), 5);
        assert_eq!(d.get(NodeId(1)).unwrap().last_refresh, 10);
    }

    #[test]
    fn expire_removes_stale_spares_fresh() {
        let mut d = Directory::new();
        d.apply_join(rec(1, 1), Provenance::Direct, 0);
        d.apply_join(rec(2, 1), Provenance::Direct, 90);
        let removed = d.expire(100, |_| 50);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].node, NodeId(1));
        assert!(d.contains(NodeId(2)));
    }

    #[test]
    fn expire_never_removes_local() {
        let mut d = Directory::new();
        d.apply_join(rec(0, 1), Provenance::Local, 0);
        let removed = d.expire(1_000_000, |_| 1);
        assert!(removed.is_empty());
        assert!(d.contains(NodeId(0)));
    }

    #[test]
    fn expire_cascades_to_relayed_entries() {
        let mut d = Directory::new();
        // Leader 5 heard directly; nodes 6,7 relayed by 5; node 8 direct.
        d.apply_join(rec(5, 1), Provenance::Direct, 0);
        d.apply_join(rec(6, 1), Provenance::Relayed(NodeId(5)), 100);
        d.apply_join(rec(7, 1), Provenance::Relayed(NodeId(5)), 100);
        d.apply_join(rec(8, 1), Provenance::Direct, 100);
        // Only node 5 is stale, but 6 and 7 must cascade with it.
        let removed = d.expire(100, |e| if e.record.node == NodeId(5) { 50 } else { 500 });
        let mut ids: Vec<u32> = removed.iter().map(|r| r.node.0).collect();
        ids.sort();
        assert_eq!(ids, vec![5, 6, 7]);
        assert!(d.contains(NodeId(8)));
    }

    #[test]
    fn purge_relayed_by_cascades_transitively() {
        let mut d = Directory::new();
        d.apply_join(rec(1, 1), Provenance::Direct, 0);
        d.apply_join(rec(2, 1), Provenance::Relayed(NodeId(1)), 0);
        d.apply_join(rec(3, 1), Provenance::Relayed(NodeId(2)), 0);
        d.apply_join(rec(4, 1), Provenance::Direct, 0);
        let removed = d.purge_relayed_by(NodeId(1));
        let mut ids: Vec<u32> = removed.iter().map(|r| r.node.0).collect();
        ids.sort();
        assert_eq!(ids, vec![2, 3]);
        assert!(d.contains(NodeId(1)));
        assert!(d.contains(NodeId(4)));
    }

    #[test]
    fn direct_supersedes_relayed_provenance() {
        let mut d = Directory::new();
        d.apply_join(rec(1, 1), Provenance::Relayed(NodeId(9)), 0);
        d.apply_join(rec(1, 1), Provenance::Direct, 1);
        assert_eq!(d.get(NodeId(1)).unwrap().provenance, Provenance::Direct);
        // But relayed does not downgrade direct.
        d.apply_join(rec(1, 1), Provenance::Relayed(NodeId(9)), 2);
        assert_eq!(d.get(NodeId(1)).unwrap().provenance, Provenance::Direct);
    }

    #[test]
    fn snapshot_carries_relayers() {
        let mut d = Directory::new();
        d.apply_join(rec(1, 1), Provenance::Direct, 0);
        d.apply_join(rec(2, 1), Provenance::Relayed(NodeId(1)), 0);
        let snap = d.snapshot();
        assert_eq!(snap.len(), 2);
        let relayed = snap.iter().find(|r| r.record.node == NodeId(2)).unwrap();
        assert_eq!(relayed.relayed_by, Some(NodeId(1)));
    }

    #[test]
    fn service_summary_aggregates() {
        let mut d = Directory::new();
        let a = NodeRecord::new(NodeId(1), 1)
            .with_service(ServiceDecl::new("idx", PartitionSet::from_iter([0, 1])));
        let b = NodeRecord::new(NodeId(2), 1)
            .with_service(ServiceDecl::new("idx", PartitionSet::from_iter([1, 2])))
            .with_service(ServiceDecl::new("doc", PartitionSet::from_iter([0])));
        d.apply_join(a, Provenance::Direct, 0);
        d.apply_join(b, Provenance::Direct, 0);
        let sum = d.service_summary();
        assert_eq!(sum.len(), 2);
        assert_eq!(sum[0].name, "doc");
        assert_eq!(sum[1].name, "idx");
        assert_eq!(sum[1].instances, 2);
        assert_eq!(sum[1].partitions.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn digest_tracks_every_mutation_class() {
        let mut d = Directory::new();
        assert!(d.digest().is_empty());
        d.apply_join(rec(2, 1), Provenance::Direct, 0);
        d.apply_join(rec(1, 1), Provenance::Direct, 0);
        d.apply_join(rec(3, 1), Provenance::Relayed(NodeId(1)), 0);
        // Sorted by node regardless of insertion order.
        let ids: Vec<u32> = d.digest().iter().map(|e| e.node.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        // Incarnation bump updates in place.
        d.apply_join(rec(2, 5), Provenance::Direct, 1);
        assert_eq!(d.digest()[1].incarnation, 5);
        // Same-incarnation refresh leaves the digest alone.
        d.apply_join(rec(2, 5), Provenance::Direct, 2);
        assert_eq!(d.digest(), d.rescan_digest().as_slice());
        // Leave removes; purge cascades; remove drops.
        d.apply_leave(NodeId(2), 5, 3);
        d.purge_relayed_by(NodeId(1));
        d.remove(NodeId(1));
        assert!(d.digest().is_empty());
        assert!(d.digest_is_coherent());
    }

    #[test]
    fn digest_survives_expiry_cascade() {
        let mut d = Directory::new();
        d.apply_join(rec(5, 1), Provenance::Direct, 0);
        d.apply_join(rec(6, 1), Provenance::Relayed(NodeId(5)), 100);
        d.apply_join(rec(8, 1), Provenance::Direct, 100);
        d.expire(100, |e| if e.record.node == NodeId(5) { 50 } else { 500 });
        let ids: Vec<u32> = d.digest().iter().map(|e| e.node.0).collect();
        assert_eq!(ids, vec![8]);
        assert_eq!(d.digest(), d.rescan_digest().as_slice());
    }

    #[test]
    fn apply_join_with_skips_materialization_on_match() {
        let mut d = Directory::new();
        d.apply_join(rec(1, 3), Provenance::Direct, 0);
        // Same incarnation, `same` says identical: refresh only, the
        // record must never be built.
        let applied = d.apply_join_with(
            NodeId(1),
            3,
            Provenance::Direct,
            7,
            || unreachable!("fast path must not materialize"),
            |_| true,
        );
        assert_eq!(applied, Applied::Ignored);
        assert_eq!(d.get(NodeId(1)).unwrap().last_refresh, 7);
        // Older incarnation: also no materialization.
        let applied = d.apply_join_with(
            NodeId(1),
            2,
            Provenance::Direct,
            8,
            || unreachable!("stale join must not materialize"),
            |_| false,
        );
        assert_eq!(applied, Applied::Ignored);
        // Newer incarnation materializes and lands.
        let applied =
            d.apply_join_with(NodeId(1), 4, Provenance::Direct, 9, || rec(1, 4), |_| false);
        assert!(applied.changed());
        assert_eq!(d.get(NodeId(1)).unwrap().record.incarnation, 4);
        assert_eq!(d.digest()[0].incarnation, 4);
    }

    #[test]
    fn apply_join_with_conservative_same_still_converges() {
        let mut d = Directory::new();
        d.apply_join(rec(1, 3), Provenance::Direct, 0);
        // `same` answering false on an identical record: re-stores (one
        // wasted materialization) but final state is unchanged.
        let applied =
            d.apply_join_with(NodeId(1), 3, Provenance::Direct, 5, || rec(1, 3), |_| false);
        assert!(applied.changed());
        assert_eq!(d.get(NodeId(1)).unwrap().record, rec(1, 3));
        assert!(d.digest_is_coherent());
    }

    #[test]
    fn compact_tombstones_drops_departed() {
        let mut d = Directory::new();
        d.apply_join(rec(1, 1), Provenance::Direct, 0);
        d.apply_leave(NodeId(1), 1, 0);
        d.apply_join(rec(2, 1), Provenance::Direct, 0);
        d.apply_leave(NodeId(2), 1, 0);
        d.apply_join(rec(2, 2), Provenance::Direct, 0);
        d.compact_tombstones();
        // Node 1 tombstone gone: an old-incarnation join now sneaks in —
        // acceptable soft-state behaviour; heartbeat absence re-kills it.
        assert!(d.apply_join(rec(1, 1), Provenance::Direct, 1).changed());
        // Node 2 tombstone kept (node present).
        assert_eq!(
            d.apply_join(rec(2, 1), Provenance::Direct, 1),
            Applied::Ignored
        );
    }
}
