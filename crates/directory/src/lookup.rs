//! Service lookup: the consumer-facing query API of the yellow pages.
//!
//! Mirrors the paper's `MClient::lookup_service(service, partition,
//! machines)` (§5): both the service name and the partition list accept
//! regular expressions, and the result is a `MachineList` — per machine, a
//! list of attribute key/value pairs describing machine and service
//! configuration.

use crate::Directory;
use tamp_regexlite::Regex;
use tamp_wire::{NodeId, PartitionSet};

/// A compiled lookup query.
///
/// * `service` is a regex matched against the full service name.
/// * `partition` is either a partition-list expression (`"0"`, `"1-3,7"`),
///   in which case a machine matches when it hosts **any** of the listed
///   partitions, or a regex matched against each hosted partition id's
///   decimal form (so `".*"` matches any machine hosting the service at
///   all, even with no partitions... except a machine with zero partitions
///   has nothing to match — use [`LookupQuery::any_partition`] for that).
#[derive(Debug, Clone)]
pub struct LookupQuery {
    service: Regex,
    partition: PartitionFilter,
}

#[derive(Debug, Clone)]
enum PartitionFilter {
    /// Match any machine exporting the service, regardless of partitions.
    Any,
    /// Match if the machine hosts at least one of these partitions.
    Set(PartitionSet),
    /// Match if any hosted partition's decimal string matches.
    Pattern(Regex),
}

/// One lookup result: the paper's `Machine` — a list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    pub node: NodeId,
    /// Partitions of the matched service hosted by this machine.
    pub partitions: PartitionSet,
    /// Matched service name (useful when the query was a pattern).
    pub service: String,
    /// Machine attributes followed by service attributes.
    pub attrs: Vec<(String, String)>,
}

/// Lookup error: the query itself was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError(pub String);

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad lookup query: {}", self.0)
    }
}

impl std::error::Error for QueryError {}

impl LookupQuery {
    /// Build a query from the paper's two string arguments.
    pub fn new(service: &str, partition: &str) -> Result<Self, QueryError> {
        let service =
            Regex::new(service).map_err(|e| QueryError(format!("service pattern: {e}")))?;
        let partition = if partition.is_empty() || partition == "*" {
            PartitionFilter::Any
        } else if let Some(set) = PartitionSet::parse(partition) {
            PartitionFilter::Set(set)
        } else {
            PartitionFilter::Pattern(
                Regex::new(partition).map_err(|e| QueryError(format!("partition pattern: {e}")))?,
            )
        };
        Ok(LookupQuery { service, partition })
    }

    /// Query matching any machine that exports a service matching
    /// `service`, regardless of partitions.
    pub fn any_partition(service: &str) -> Result<Self, QueryError> {
        Self::new(service, "")
    }

    fn partitions_match(&self, hosted: &PartitionSet) -> bool {
        match &self.partition {
            PartitionFilter::Any => true,
            PartitionFilter::Set(want) => want.intersects(hosted),
            PartitionFilter::Pattern(re) => hosted.iter().any(|p| re.matches_full(&p.to_string())),
        }
    }
}

impl Directory {
    /// Find every machine exporting a service matching the query. Results
    /// are sorted by node id for determinism.
    pub fn lookup(&self, query: &LookupQuery) -> Vec<Machine> {
        let mut out = Vec::new();
        for e in self.entries() {
            for s in &e.record.services {
                if query.service.matches_full(&s.name) && query.partitions_match(&s.partitions) {
                    let mut attrs = e.record.attrs.clone();
                    attrs.extend(s.attrs.iter().cloned());
                    out.push(Machine {
                        node: e.record.node,
                        partitions: s.partitions.clone(),
                        service: s.name.clone(),
                        attrs,
                    });
                }
            }
        }
        out.sort_by_key(|m| (m.node, m.service.clone()));
        out
    }

    /// Convenience: lookup by raw strings (compiles the query each call).
    pub fn lookup_service(
        &self,
        service: &str,
        partition: &str,
    ) -> Result<Vec<Machine>, QueryError> {
        Ok(self.lookup(&LookupQuery::new(service, partition)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Provenance;
    use tamp_wire::{NodeRecord, ServiceDecl};

    fn directory() -> Directory {
        let mut d = Directory::new();
        let n1 = NodeRecord::new(NodeId(1), 1)
            .with_service(ServiceDecl::new(
                "index",
                PartitionSet::parse("0-1").unwrap(),
            ))
            .with_attr("mem", "4G");
        let n2 = NodeRecord::new(NodeId(2), 1)
            .with_service(ServiceDecl::new("index", PartitionSet::parse("2").unwrap()))
            .with_service({
                let mut s = ServiceDecl::new("doc", PartitionSet::parse("0").unwrap());
                s.attrs.push(("Port".into(), "8080".into()));
                s
            });
        let n3 = NodeRecord::new(NodeId(3), 1)
            .with_service(ServiceDecl::new("doc", PartitionSet::parse("1-2").unwrap()));
        d.apply_join(n1, Provenance::Direct, 0);
        d.apply_join(n2, Provenance::Direct, 0);
        d.apply_join(n3, Provenance::Direct, 0);
        d
    }

    #[test]
    fn exact_service_any_partition() {
        let d = directory();
        let m = d.lookup_service("index", "").unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].node, NodeId(1));
        assert_eq!(m[1].node, NodeId(2));
    }

    #[test]
    fn partition_list_filters() {
        let d = directory();
        // Only node 1 hosts index partitions 0-1.
        let m = d.lookup_service("index", "0-1").unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].node, NodeId(1));
        // Partition 2 of index: node 2 only.
        let m = d.lookup_service("index", "2").unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].node, NodeId(2));
    }

    #[test]
    fn service_regex_matches_multiple() {
        let d = directory();
        let m = d.lookup_service("(index|doc)", "").unwrap();
        // n1 index, n2 index, n2 doc, n3 doc.
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn partition_regex() {
        let d = directory();
        // Partitions whose decimal form matches [12]: doc partitions 1,2
        // on node 3 and index partition 1 on node 1, index 2 on node 2.
        let m = d.lookup_service(".*", "[12]").unwrap();
        let nodes: Vec<u32> = m.iter().map(|m| m.node.0).collect();
        assert_eq!(nodes, vec![1, 2, 3]);
    }

    #[test]
    fn attrs_merge_machine_then_service() {
        let d = directory();
        let m = d.lookup_service("doc", "0").unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].node, NodeId(2));
        assert!(m[0].attrs.iter().any(|(k, v)| k == "Port" && v == "8080"));
    }

    #[test]
    fn machine_attr_included() {
        let d = directory();
        let m = d.lookup_service("index", "0").unwrap();
        assert!(m[0].attrs.iter().any(|(k, v)| k == "mem" && v == "4G"));
    }

    #[test]
    fn no_match_empty() {
        let d = directory();
        assert!(d.lookup_service("cache", "").unwrap().is_empty());
        assert!(d.lookup_service("index", "9").unwrap().is_empty());
    }

    #[test]
    fn bad_patterns_are_errors() {
        let d = directory();
        assert!(d.lookup_service("ind(ex", "").is_err());
        // An unparseable partition list falls back to regex; if that fails
        // too, it's an error.
        assert!(d.lookup_service("index", "((").is_err());
    }

    #[test]
    fn star_partition_means_any() {
        let d = directory();
        let all = d.lookup_service("doc", "*").unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn results_sorted_by_node() {
        let d = directory();
        let m = d.lookup_service(".*", "").unwrap();
        let nodes: Vec<u32> = m.iter().map(|m| m.node.0).collect();
        let mut sorted = nodes.clone();
        sorted.sort();
        assert_eq!(nodes, sorted);
    }
}
