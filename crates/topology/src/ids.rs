//! Strongly-typed identifiers for topology entities.

use std::fmt;

/// A host (cluster node). The numeric value doubles as the node's unique
/// protocol identity — the paper uses the IP address for this purpose; the
/// bully election picks the member with the *lowest* id as leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl HostId {
    /// Render as a synthetic dotted-quad "IP address" (10.x.y.z). Purely
    /// cosmetic, used by examples and traces.
    pub fn as_ip(&self) -> String {
        let v = self.0;
        format!("10.{}.{}.{}", (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff)
    }

    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// A layer-2 segment (switch / VLAN): one broadcast domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u16);

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// A layer-3 router. Each router on a packet's path decrements its TTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub u16);

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_id_ordering_matches_numeric() {
        assert!(HostId(3) < HostId(10));
        assert_eq!(HostId(7), HostId(7));
    }

    #[test]
    fn host_ip_rendering() {
        assert_eq!(HostId(0).as_ip(), "10.0.0.0");
        assert_eq!(HostId(258).as_ip(), "10.0.1.2");
        assert_eq!(HostId(65536).as_ip(), "10.1.0.0");
    }

    #[test]
    fn display_formats() {
        assert_eq!(HostId(5).to_string(), "h5");
        assert_eq!(SegmentId(2).to_string(), "seg2");
        assert_eq!(RouterId(1).to_string(), "r1");
    }
}
