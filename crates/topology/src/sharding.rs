//! Segment → shard assignment for the sharded netsim engine.
//!
//! The sharded engine runs one event loop per shard and synchronizes
//! them with conservative lookahead: a shard may execute ahead of the
//! others by up to the smallest latency any cross-shard packet can
//! possibly have. That floor is a pure topology quantity — for hosts
//! `a`, `b` in different shards, delivery latency is at least
//! `host_link(a) + segment_latency(seg(a), seg(b)) + host_link(b)` —
//! so the planner's two jobs live here:
//!
//! 1. **Assignment** ([`plan_shards`]): partition segments into `k`
//!    shards so that cross-shard latency floors are as *large* as
//!    possible (bigger floor ⇒ longer epochs ⇒ fewer barriers). Greedy
//!    k-center over the inter-segment fabric latencies: pick `k`
//!    mutually-far seed segments, then attach every segment to its
//!    nearest seed, breaking ties toward the least-loaded shard so
//!    host counts stay balanced.
//! 2. **Lookahead extraction**: the minimum floor over every pair of
//!    populated segments that ended up in different shards.
//!
//! The plan must be computed on the pristine topology (all routers
//! up). Router faults only *lengthen* segment latencies — a detour
//! replaces a shortcut or the pair becomes unreachable — so the
//! build-time floor stays a valid lower bound for the whole run.
//!
//! A segment is *atomic*: all its hosts land on one shard. Same-segment
//! traffic (TTL 1, the bulk of the paper's heartbeat load) therefore
//! never crosses a shard boundary.

use crate::{Nanos, SegmentId, Topology};

/// A segment→shard partition plus the conservative lookahead it allows.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Shard index per segment (dense `0..shards`). Segments with no
    /// hosts are parked on shard 0; they originate no traffic.
    pub seg_shard: Vec<u32>,
    /// Number of shards actually used (≥ 1, ≤ the requested count).
    pub shards: usize,
    /// Smallest possible latency of a cross-shard delivery:
    /// `min over cross-shard populated pairs (a, b)` of
    /// `min_host_link(a) + segment_latency(a, b) + min_host_link(b)`.
    /// `None` when there is a single shard, or when no cross-shard pair
    /// is mutually reachable (lookahead is then unbounded).
    pub lookahead: Option<Nanos>,
}

impl ShardPlan {
    /// The trivial plan: everything on one shard, unbounded lookahead.
    pub fn single(num_segments: usize) -> Self {
        ShardPlan {
            seg_shard: vec![0; num_segments],
            shards: 1,
            lookahead: None,
        }
    }
}

/// Partition `topo`'s segments into at most `want` shards (see the
/// module docs for the method). Degenerates to [`ShardPlan::single`]
/// when `want <= 1` or fewer than two segments have hosts.
pub fn plan_shards(topo: &Topology, want: usize) -> ShardPlan {
    let ns = topo.num_segments();
    let populated: Vec<u16> = (0..ns as u16)
        .filter(|&s| !topo.hosts_on(SegmentId(s)).is_empty())
        .collect();
    let k = want.min(populated.len());
    if k <= 1 {
        return ShardPlan::single(ns);
    }

    let host_count: Vec<usize> = populated
        .iter()
        .map(|&s| topo.hosts_on(SegmentId(s)).len())
        .collect();
    let min_link: Vec<Nanos> = populated
        .iter()
        .map(|&s| {
            topo.hosts_on(SegmentId(s))
                .iter()
                .map(|&h| topo.host_link(h))
                .min()
                .unwrap_or(0)
        })
        .collect();
    // Fabric distance for clustering: `None` = unreachable (infinitely
    // far — exactly what a k-center seed wants to grab first).
    let fab = |a: u16, b: u16| -> Option<Nanos> {
        if topo.segment_hops(SegmentId(a), SegmentId(b)) == u8::MAX {
            None
        } else {
            Some(topo.segment_latency(SegmentId(a), SegmentId(b)))
        }
    };
    // Rank where unreachable sorts above every finite distance.
    let rank = |d: Option<Nanos>| -> u128 {
        match d {
            Some(v) => v as u128,
            None => u128::MAX,
        }
    };

    // Greedy k-center seeds: start from the largest segment, then
    // repeatedly take the segment farthest from every seed so far
    // (max-min distance; ties toward the lowest segment id).
    let first = (0..populated.len())
        .max_by_key(|&p| (host_count[p], usize::MAX - p))
        .unwrap();
    let mut seeds: Vec<usize> = vec![first];
    let mut dist_to_seeds: Vec<u128> = populated
        .iter()
        .map(|&s| rank(fab(populated[first], s)))
        .collect();
    while seeds.len() < k {
        let next = (0..populated.len())
            .filter(|p| !seeds.contains(p))
            .max_by_key(|&p| (dist_to_seeds[p], usize::MAX - p))
            .unwrap();
        seeds.push(next);
        for (p, d) in dist_to_seeds.iter_mut().enumerate() {
            *d = (*d).min(rank(fab(populated[next], populated[p])));
        }
    }

    // Assign each populated segment (in id order) to the nearest seed;
    // ties go to the least-loaded shard by host count, then the lowest
    // shard index.
    let mut seg_shard = vec![0u32; ns];
    let mut load = vec![0usize; k];
    for (p, &s) in populated.iter().enumerate() {
        let best = (0..k)
            .min_by_key(|&si| (rank(fab(populated[seeds[si]], s)), load[si], si))
            .unwrap();
        seg_shard[s as usize] = best as u32;
        load[best] += host_count[p];
    }

    // Renumber densely in case equal-distance ties drained a seed's
    // shard empty of segments.
    let mut remap = vec![u32::MAX; k];
    let mut shards = 0u32;
    for &s in &populated {
        let old = seg_shard[s as usize] as usize;
        if remap[old] == u32::MAX {
            remap[old] = shards;
            shards += 1;
        }
        seg_shard[s as usize] = remap[old];
    }
    for (s, slot) in seg_shard.iter_mut().enumerate() {
        if topo.hosts_on(SegmentId(s as u16)).is_empty() {
            *slot = 0;
        }
    }
    if shards <= 1 {
        return ShardPlan::single(ns);
    }

    // Conservative lookahead: the smallest latency any cross-shard
    // delivery can have.
    let mut lookahead: Option<Nanos> = None;
    for i in 0..populated.len() {
        for j in (i + 1)..populated.len() {
            if seg_shard[populated[i] as usize] == seg_shard[populated[j] as usize] {
                continue;
            }
            if let Some(f) = fab(populated[i], populated[j]) {
                let floor = min_link[i] + f + min_link[j];
                lookahead = Some(lookahead.map_or(floor, |x| x.min(floor)));
            }
        }
    }
    ShardPlan {
        seg_shard,
        shards: shards as usize,
        lookahead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, DEFAULT_FABRIC_LATENCY, DEFAULT_HOST_LATENCY, MILLIS};

    #[test]
    fn single_segment_collapses_to_one_shard() {
        let t = generators::single_segment(10);
        let plan = plan_shards(&t, 8);
        assert_eq!(plan.shards, 1);
        assert_eq!(plan.lookahead, None);
    }

    #[test]
    fn want_one_is_the_trivial_plan() {
        let t = generators::star_of_segments(4, 5);
        let plan = plan_shards(&t, 1);
        assert_eq!(plan.shards, 1);
        assert!(plan.seg_shard.iter().all(|&s| s == 0));
    }

    #[test]
    fn star_splits_evenly_with_default_floor() {
        let t = generators::star_of_segments(8, 10);
        let plan = plan_shards(&t, 4);
        assert_eq!(plan.shards, 4);
        // All pairwise fabric distances are equal, so load balancing
        // must spread the 8 segments 2-per-shard.
        let mut per_shard = vec![0usize; 4];
        for s in 0..8 {
            per_shard[plan.seg_shard[s] as usize] += t.hosts_on(SegmentId(s as u16)).len();
        }
        assert_eq!(per_shard, vec![20; 4]);
        // Floor: host + (seg–core + core–seg) + host.
        assert_eq!(
            plan.lookahead,
            Some(2 * DEFAULT_HOST_LATENCY + 2 * DEFAULT_FABRIC_LATENCY)
        );
    }

    #[test]
    fn want_above_segment_count_clamps() {
        let t = generators::star_of_segments(3, 2);
        let plan = plan_shards(&t, 16);
        assert_eq!(plan.shards, 3);
    }

    #[test]
    fn wan_split_lands_on_the_wan_floor() {
        // Two DCs joined by a 45 ms WAN chain: a 2-way split must put
        // one DC per shard, and the lookahead must be WAN-scale — that
        // is the whole point of sharding by datacenter.
        let (t, groups) = generators::multi_datacenter(&[(2, 5), (2, 5)], 45 * MILLIS);
        let plan = plan_shards(&t, 2);
        assert_eq!(plan.shards, 2);
        let shard_of = |h: crate::HostId| plan.seg_shard[t.segment_of(h).0 as usize];
        let s0 = shard_of(groups[0][0]);
        assert!(groups[0].iter().all(|&h| shard_of(h) == s0));
        assert!(groups[1].iter().all(|&h| shard_of(h) != s0));
        let la = plan.lookahead.expect("reachable cross pair");
        assert!(la >= 40 * MILLIS, "WAN floor too small: {la}");
    }

    #[test]
    fn empty_segments_do_not_constrain_lookahead() {
        let mut b = crate::TopologyBuilder::new();
        let core = b.add_router();
        // Two populated segments plus one empty one hanging off the
        // same core; the empty segment must not drag the floor down or
        // grab a seed.
        for n in [3usize, 3, 0] {
            let s = b.add_segment();
            b.link_segment_router(s, core, None);
            b.add_hosts(s, n);
        }
        let t = b.build();
        let plan = plan_shards(&t, 3);
        assert_eq!(plan.shards, 2);
        assert_eq!(
            plan.lookahead,
            Some(2 * DEFAULT_HOST_LATENCY + 2 * DEFAULT_FABRIC_LATENCY)
        );
    }
}
