//! Topology generators used throughout the experiments.

use crate::{Topology, TopologyBuilder};

/// All `n` hosts on one layer-2 segment: the degenerate case where the
/// hierarchical protocol collapses to all-to-all (paper §6.4: "When there
/// is one network, the hierarchical scheme reduces to the all-to-all
/// scheme").
pub fn single_segment(n: usize) -> Topology {
    let mut b = TopologyBuilder::new();
    let s = b.add_segment();
    b.add_hosts(s, n);
    b.build()
}

/// `segments` layer-2 networks with `hosts_per_segment` hosts each, all
/// joined by a single core router. This is the shape of the paper's
/// testbed: "two Layer-3 switches ... connected by a Gigabit link", scaled
/// as "five networks for 100 nodes and these five networks form a second
/// level network". Any two hosts in different segments are TTL distance 2
/// apart.
pub fn star_of_segments(segments: usize, hosts_per_segment: usize) -> Topology {
    let mut b = TopologyBuilder::new();
    let core = b.add_router();
    for _ in 0..segments {
        let s = b.add_segment();
        b.link_segment_router(s, core, None);
        b.add_hosts(s, hosts_per_segment);
    }
    b.build()
}

/// A chain of segments, each linked to the next through its own router:
/// `seg0 - r0 - seg1 - r1 - seg2 - ...`. TTL distance between segment `i`
/// and segment `j` is `|i - j| + 1`. Produces deep membership trees and is
/// the stress topology for multi-level update propagation.
pub fn chain_of_segments(segments: usize, hosts_per_segment: usize) -> Topology {
    assert!(segments >= 1);
    let mut b = TopologyBuilder::new();
    let mut prev = b.add_segment();
    b.add_hosts(prev, hosts_per_segment);
    for _ in 1..segments {
        let r = b.add_router();
        let s = b.add_segment();
        b.link_segment_router(prev, r, None);
        b.link_segment_router(s, r, None);
        b.add_hosts(s, hosts_per_segment);
        prev = s;
    }
    b.build()
}

/// A balanced tree of routers of the given `depth` and `fanout`, with a
/// layer-2 segment of `hosts_per_leaf` hosts under each leaf router.
///
/// * `depth = 1` is [`star_of_segments`] with `fanout` segments.
/// * `depth = 2, fanout = 2` gives 4 leaf segments where sibling leaves
///   are 2 TTL apart and cousins 4 TTL apart.
pub fn tree_of_segments(depth: usize, fanout: usize, hosts_per_leaf: usize) -> Topology {
    tree_of_segments_with_latency(depth, fanout, hosts_per_leaf, None)
}

/// [`tree_of_segments`] with an explicit per-link fabric latency
/// (`None` = the builder default). Deep trees with heavier links give
/// cross-subtree paths a large latency floor, which is what the sharded
/// engine's conservative lookahead feeds on — the A9 frontier sweep
/// uses this to model multi-building campus fabrics.
pub fn tree_of_segments_with_latency(
    depth: usize,
    fanout: usize,
    hosts_per_leaf: usize,
    link_latency: Option<crate::Nanos>,
) -> Topology {
    assert!(depth >= 1 && fanout >= 1);
    let mut b = TopologyBuilder::new();
    let root = b.add_router();
    // Breadth-first expansion of the router tree.
    let mut frontier = vec![root];
    for _level in 1..depth {
        let mut next = Vec::new();
        for &parent in &frontier {
            for _ in 0..fanout {
                let r = b.add_router();
                b.link_routers(parent, r, link_latency);
                next.push(r);
            }
        }
        frontier = next;
    }
    for &leaf_router in &frontier {
        for _ in 0..fanout {
            let s = b.add_segment();
            b.link_segment_router(s, leaf_router, link_latency);
            b.add_hosts(s, hosts_per_leaf);
        }
    }
    b.build()
}

/// A ring of segments: router `r_i` joins segment `i` to segment
/// `(i + 1) % segments`, so every segment pair has two disjoint router
/// paths. This is the redundant-fabric shape for dynamic-topology chaos:
/// taking any single router down keeps the cluster connected but
/// re-scopes TTL distances onto the detour the long way around the ring
/// (worst case `segments - 1` hops), forcing live group re-formation
/// instead of a partition. `resilient_max_ttl()` is `segments`.
pub fn ring_of_segments(segments: usize, hosts_per_segment: usize) -> Topology {
    assert!(segments >= 2, "a ring needs at least two segments");
    let mut b = TopologyBuilder::new();
    let segs: Vec<_> = (0..segments)
        .map(|_| {
            let s = b.add_segment();
            b.add_hosts(s, hosts_per_segment);
            s
        })
        .collect();
    for i in 0..segments {
        let r = b.add_router();
        b.link_segment_router(segs[i], r, None);
        b.link_segment_router(segs[(i + 1) % segments], r, None);
    }
    b.build()
}

/// A small two-tier Clos-like fabric: `pods` pods, each with one edge
/// router and `segs_per_pod` segments; every edge router connects to every
/// one of `spines` spine routers. Intra-pod segments are 1 hop (TTL 2)
/// apart; inter-pod segments cross edge–spine–edge, 3 hops (TTL 4).
pub fn fat_tree(pods: usize, segs_per_pod: usize, spines: usize, hosts_per_seg: usize) -> Topology {
    assert!(pods >= 1 && segs_per_pod >= 1 && spines >= 1);
    let mut b = TopologyBuilder::new();
    let spine_ids: Vec<_> = (0..spines).map(|_| b.add_router()).collect();
    for _ in 0..pods {
        let edge = b.add_router();
        for &sp in &spine_ids {
            b.link_routers(edge, sp, None);
        }
        for _ in 0..segs_per_pod {
            let s = b.add_segment();
            b.link_segment_router(s, edge, None);
            b.add_hosts(s, hosts_per_seg);
        }
    }
    b.build()
}

/// Multiple data centers, each a star of segments, joined by a long
/// chain of WAN routers.
///
/// The chain is deliberately deeper than any sane `MAX_TTL`, so
/// TTL-scoped multicast can never leak across data centers — exactly the
/// situation of paper §3.2, where proxies must bridge membership with
/// unicast "since multicast over VPN or Internet is generally (un)available".
/// Unicast still works, with `wan_one_way_latency` split across the chain.
///
/// Returns the topology plus the host ids of each data center, in order.
pub fn multi_datacenter(
    dcs: &[(usize, usize)],
    wan_one_way_latency: crate::Nanos,
) -> (Topology, Vec<Vec<crate::HostId>>) {
    use crate::Nanos;
    assert!(!dcs.is_empty());
    /// Router hops inserted between adjacent DCs; TTL distance across is
    /// `WAN_HOPS + 1 + 1` (> any practical MAX_TTL).
    const WAN_HOPS: usize = 12;
    let mut b = TopologyBuilder::new();
    let mut groups = Vec::new();
    let mut cores = Vec::new();
    for &(segments, hosts_per_segment) in dcs {
        let core = b.add_router();
        let mut hosts = Vec::new();
        for _ in 0..segments {
            let s = b.add_segment();
            b.link_segment_router(s, core, None);
            hosts.extend(b.add_hosts(s, hosts_per_segment));
        }
        groups.push(hosts);
        cores.push(core);
    }
    // Chain the DC cores together through WAN router chains.
    for w in cores.windows(2) {
        let per_link: Nanos = (wan_one_way_latency / (WAN_HOPS as u64 + 1)).max(1);
        let mut prev = w[0];
        for _ in 0..WAN_HOPS {
            let r = b.add_router();
            b.link_routers(prev, r, Some(per_link));
            prev = r;
        }
        b.link_routers(prev, w[1], Some(per_link));
    }
    (b.build(), groups)
}

/// The paper's Fig. 4 non-transitive example: three single-host segments
/// in a line of routers such that host B reaches A and C within 3 hops but
/// A and C need 4 hops to reach each other. Demonstrates overlapping
/// same-level groups.
pub fn non_transitive_triangle() -> Topology {
    let mut b = TopologyBuilder::new();
    // seg_a - r0 - r1 - seg_b - r2 - r3 - seg_c
    //  A: 2 routers to B (TTL 3); B: 2 routers to C (TTL 3);
    //  A: 4 routers to C... that's TTL 5, too far. Use:
    // seg_a - r0 - r1 - seg_b, seg_b - r2 - seg_c is 1 router (TTL 2).
    // We need exactly (3, 3, 4): A-B 2 routers, B-C 2 routers, A-C 3
    // routers, so one router must be shared between the two paths:
    //   A - ra - m - B      (2 routers: ra, m)
    //   B - m' ... hmm — share the middle router `m`:
    //   A - ra - m - B  and  C - rc - m - B  give A-C = ra, m, rc = 3.
    let sa = b.add_segment();
    let sb = b.add_segment();
    let sc = b.add_segment();
    let ra = b.add_router();
    let m = b.add_router();
    let rc = b.add_router();
    b.link_segment_router(sa, ra, None);
    b.link_routers(ra, m, None);
    b.link_segment_router(sb, m, None);
    b.link_segment_router(sc, rc, None);
    b.link_routers(rc, m, None);
    b.add_host(sa, None);
    b.add_host(sb, None);
    b.add_host(sc, None);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_dc_separates_multicast_but_not_unicast() {
        let (t, groups) = multi_datacenter(&[(2, 3), (2, 3)], 45 * crate::MILLIS);
        assert_eq!(groups.len(), 2);
        assert_eq!(t.num_hosts(), 12);
        let a = groups[0][0];
        let b = groups[1][0];
        // Across DCs: far beyond any MAX_TTL.
        assert!(t.ttl_distance(a, b) > 8, "dist {}", t.ttl_distance(a, b));
        // Within a DC: the usual star distances.
        assert_eq!(t.ttl_distance(groups[0][0], groups[0][1]), 1);
        assert_eq!(t.ttl_distance(groups[0][0], groups[0][3]), 2);
        // WAN latency ≈ requested one-way delay.
        let lat = t.latency(a, b);
        assert!(
            (40 * crate::MILLIS..55 * crate::MILLIS).contains(&lat),
            "wan latency {lat}"
        );
    }

    #[test]
    fn star_sizes() {
        let t = star_of_segments(5, 20);
        assert_eq!(t.num_hosts(), 100);
        assert_eq!(t.num_segments(), 5);
    }

    #[test]
    fn fat_tree_distances() {
        let t = fat_tree(2, 2, 2, 1);
        assert_eq!(t.num_segments(), 4);
        let hs: Vec<_> = t.hosts().collect();
        // Intra-pod: seg0 and seg1 share the pod's edge router.
        assert_eq!(t.ttl_distance(hs[0], hs[1]), 2);
        // Inter-pod: edge -> spine -> edge.
        assert_eq!(t.ttl_distance(hs[0], hs[2]), 4);
    }

    #[test]
    fn chain_max_ttl() {
        let t = chain_of_segments(3, 2);
        assert_eq!(t.max_ttl(), 3);
    }

    #[test]
    fn tree_depth_one_equals_star() {
        let tree = tree_of_segments(1, 4, 3);
        let star = star_of_segments(4, 3);
        assert_eq!(tree.num_hosts(), star.num_hosts());
        assert_eq!(tree.max_ttl(), star.max_ttl());
    }

    #[test]
    fn ring_survives_any_single_router_loss() {
        let mut t = ring_of_segments(4, 2);
        assert_eq!(t.num_segments(), 4);
        assert_eq!(t.num_routers(), 4);
        assert_eq!(t.max_ttl(), 3); // opposite segments: 2 hops
        assert_eq!(t.resilient_max_ttl(), 4); // detour: 3 hops
        let hs: Vec<_> = t.hosts().collect();
        assert_eq!(t.ttl_distance(hs[0], hs[2]), 2); // s0 -> s1 via r0
        assert!(t.set_router_down(crate::RouterId(0)));
        // Re-scoped the long way around: s0 - r3 - s3 - r2 - s2 - r1 - s1.
        assert_eq!(t.ttl_distance(hs[0], hs[2]), 4);
        // Still fully connected.
        for &a in &hs {
            for &b in &hs {
                assert_ne!(t.ttl_distance(a, b), u8::MAX);
            }
        }
        // Idempotent down, then revival restores the build-time scoping.
        assert!(!t.set_router_down(crate::RouterId(0)));
        assert!(t.set_router_up(crate::RouterId(0)));
        assert_eq!(t.ttl_distance(hs[0], hs[2]), 2);
        assert_eq!(t.max_ttl(), 3);
    }

    #[test]
    fn star_core_router_down_partitions_everything() {
        let mut t = star_of_segments(3, 2);
        assert_eq!(t.num_routers(), 1);
        let hs: Vec<_> = t.hosts().collect();
        assert!(t.set_router_down(crate::RouterId(0)));
        assert_eq!(t.ttl_distance(hs[0], hs[2]), u8::MAX);
        // Same-segment delivery never needed the router.
        assert_eq!(t.ttl_distance(hs[0], hs[1]), 1);
        assert!(t.set_router_up(crate::RouterId(0)));
        assert_eq!(t.ttl_distance(hs[0], hs[2]), 2);
    }

    #[test]
    fn generators_produce_fully_reachable_clusters() {
        for t in [
            single_segment(5),
            star_of_segments(3, 3),
            chain_of_segments(4, 2),
            tree_of_segments(2, 2, 2),
            fat_tree(2, 2, 2, 2),
            ring_of_segments(4, 2),
            non_transitive_triangle(),
        ] {
            let hs: Vec<_> = t.hosts().collect();
            for &a in &hs {
                for &b in &hs {
                    assert_ne!(t.ttl_distance(a, b), u8::MAX, "{a} cannot reach {b}");
                }
            }
        }
    }
}
