//! # tamp-topology — cluster network topology model
//!
//! This crate models the physical layout of a service cluster the way the
//! TAMP membership protocol sees it: hosts attached to layer-2 segments
//! (switches / VLANs), segments joined by layer-3 routers, and — across
//! data centers — WAN links.
//!
//! The single quantity the protocol cares about is the **TTL distance**
//! between two hosts: the smallest IP TTL value a multicast packet needs in
//! order to travel from one host to the other. Hosts on the same layer-2
//! segment have TTL distance 1 (no router decrements the TTL); every
//! layer-3 router crossed adds 1. Group formation (level-`k` membership
//! groups use TTL `k + 1`) and the simulator's multicast delivery rule are
//! both expressed in terms of this distance.
//!
//! TTL distance is *not* assumed to be transitive: the paper's §3.1.1
//! "other topologies" case (two hosts each 3 hops from a middle host but 4
//! hops from each other) is representable and exercised in tests, because
//! the distance is computed from the actual router graph.
//!
//! ## Quick tour
//!
//! ```
//! use tamp_topology::generators;
//!
//! // The paper's testbed: 5 layer-2 networks of 20 nodes each behind one
//! // router core.
//! let topo = generators::star_of_segments(5, 20);
//! assert_eq!(topo.num_hosts(), 100);
//! let a = topo.hosts().next().unwrap();
//! let b = topo.hosts().last().unwrap();
//! assert_eq!(topo.ttl_distance(a, a), 0);
//! assert_eq!(topo.ttl_distance(a, b), 2); // one router between segments
//! ```

mod builder;
mod generators_impl;
mod graph;
mod ids;
mod parse;
pub mod sharding;

pub mod generators {
    //! Ready-made topology shapes used by the experiments.
    pub use crate::generators_impl::{
        chain_of_segments, fat_tree, multi_datacenter, non_transitive_triangle, ring_of_segments,
        single_segment, star_of_segments, tree_of_segments, tree_of_segments_with_latency,
    };
}

pub use builder::{TopologyBuilder, DEFAULT_FABRIC_LATENCY, DEFAULT_HOST_LATENCY};
pub use ids::{HostId, RouterId, SegmentId};
pub use parse::{parse_topology, ParsedTopology, TopoParseError};

/// Nanoseconds of simulated (or real) time. All latencies in this workspace
/// are expressed in this unit so the topology crate does not need to depend
/// on the simulator's clock type.
pub type Nanos = u64;

/// One millisecond in [`Nanos`].
pub const MILLIS: Nanos = 1_000_000;
/// One microsecond in [`Nanos`].
pub const MICROS: Nanos = 1_000;
/// One second in [`Nanos`].
pub const SECS: Nanos = 1_000_000_000;

/// An immutable cluster topology: hosts on layer-2 segments joined by
/// layer-3 routers.
///
/// Build one with [`TopologyBuilder`] or a [`generators`] function. All
/// pairwise TTL distances and latencies are precomputed at `build()` time
/// (per *segment* pair, so the cost is quadratic in the number of segments,
/// not hosts).
#[derive(Debug, Clone)]
pub struct Topology {
    /// `host_segment[h]` is the segment host `h` is attached to.
    host_segment: Vec<SegmentId>,
    /// Host NIC-to-switch one-way latency, per host.
    host_link_latency: Vec<Nanos>,
    /// Hosts attached to each segment.
    segment_hosts: Vec<Vec<HostId>>,
    /// Router hops between segments: `seg_hops[a][b]` is the number of
    /// layer-3 routers on the best path, `u8::MAX` if unreachable.
    seg_hops: Vec<Vec<u8>>,
    /// One-way switch-to-switch latency along the best path between
    /// segments (excludes host link latency on either end).
    seg_latency: Vec<Vec<Nanos>>,
    /// Largest finite TTL distance between any two hosts *with every
    /// router up* (stable across [`Topology::set_router_up`] so group
    /// sizing does not flap with the fault schedule).
    max_ttl: u8,
    /// The underlying segment/router graph, retained so distances can be
    /// recomputed when a router goes down or comes back mid-run.
    fabric: graph::Fabric,
    /// `router_down[r]` marks router `r` administratively down.
    router_down: Vec<bool>,
}

impl Topology {
    /// Number of hosts in the topology.
    pub fn num_hosts(&self) -> usize {
        self.host_segment.len()
    }

    /// Number of layer-2 segments.
    pub fn num_segments(&self) -> usize {
        self.segment_hosts.len()
    }

    /// Iterate over every host id, in ascending order.
    pub fn hosts(&self) -> impl DoubleEndedIterator<Item = HostId> + ExactSizeIterator {
        (0..self.host_segment.len() as u32).map(HostId)
    }

    /// The segment a host is attached to.
    pub fn segment_of(&self, h: HostId) -> SegmentId {
        self.host_segment[h.0 as usize]
    }

    /// Hosts attached to a segment, in ascending id order.
    pub fn hosts_on(&self, s: SegmentId) -> &[HostId] {
        &self.segment_hosts[s.0 as usize]
    }

    /// The smallest IP TTL with which a packet from `a` reaches `b`.
    ///
    /// * `0` if `a == b` (loopback, no network involved);
    /// * `1` if they share a layer-2 segment;
    /// * `1 + router hops` otherwise;
    /// * `u8::MAX` if `b` is unreachable from `a`.
    pub fn ttl_distance(&self, a: HostId, b: HostId) -> u8 {
        if a == b {
            return 0;
        }
        let (sa, sb) = (self.segment_of(a), self.segment_of(b));
        let hops = self.seg_hops[sa.0 as usize][sb.0 as usize];
        if hops == u8::MAX {
            u8::MAX
        } else {
            hops.saturating_add(1)
        }
    }

    /// Router hops between two segments (`u8::MAX` if unreachable).
    pub fn segment_hops(&self, a: SegmentId, b: SegmentId) -> u8 {
        self.seg_hops[a.0 as usize][b.0 as usize]
    }

    /// A host's NIC-to-switch one-way link latency.
    pub fn host_link(&self, h: HostId) -> Nanos {
        self.host_link_latency[h.0 as usize]
    }

    /// One-way switch-fabric latency between two segments along the best
    /// currently-routable path, excluding the host links on both ends
    /// (0 for `a == b`). Taking a router down can only lengthen this —
    /// detours replace shortcuts — so a value read with every router up
    /// is a lower bound for the whole run. The [`sharding`] planner
    /// relies on exactly that to derive conservative lookahead floors.
    pub fn segment_latency(&self, a: SegmentId, b: SegmentId) -> Nanos {
        self.seg_latency[a.0 as usize][b.0 as usize]
    }

    /// One-way network latency from host `a` to host `b`.
    ///
    /// Includes both host link latencies plus the switch fabric latency
    /// along the best (fewest-router-hops, then lowest-latency) path.
    /// Latency from a host to itself is 0.
    pub fn latency(&self, a: HostId, b: HostId) -> Nanos {
        if a == b {
            return 0;
        }
        let (sa, sb) = (self.segment_of(a), self.segment_of(b));
        self.host_link_latency[a.0 as usize]
            + self.seg_latency[sa.0 as usize][sb.0 as usize]
            + self.host_link_latency[b.0 as usize]
    }

    /// The largest finite TTL distance between any pair of hosts. Group
    /// formation stops once this TTL is reached (the paper's `MAX_TTL`
    /// configuration knob defaults to this value).
    pub fn max_ttl(&self) -> u8 {
        self.max_ttl
    }

    /// All hosts within TTL distance `ttl` of `from` (excluding `from`
    /// itself). This is exactly the delivery set of a multicast packet sent
    /// by `from` with the given TTL, before loss is applied.
    pub fn reachable_within(&self, from: HostId, ttl: u8) -> Vec<HostId> {
        self.hosts()
            .filter(|&h| h != from && self.ttl_distance(from, h) <= ttl)
            .collect()
    }

    /// Number of layer-3 routers in the fabric.
    pub fn num_routers(&self) -> usize {
        self.fabric.num_routers()
    }

    /// Whether router `r` is currently up (routers start up).
    pub fn router_is_up(&self, r: RouterId) -> bool {
        self.router_down.get(r.0 as usize) != Some(&true)
    }

    /// Take router `r` down and recompute every segment-pair distance
    /// around it. Segment pairs whose only paths crossed `r` become
    /// unreachable (`u8::MAX`); pairs with a redundant path are re-scoped
    /// to the detour's (possibly larger) hop count. `max_ttl()` is *not*
    /// changed: it reflects the fully-up fabric, so callers sizing group
    /// hierarchies must provision their own headroom for detours.
    ///
    /// Returns `true` if the router was up (state changed).
    pub fn set_router_down(&mut self, r: RouterId) -> bool {
        self.set_router_state(r, true)
    }

    /// Bring router `r` back and recompute distances. Returns `true` if
    /// the router was down (state changed).
    pub fn set_router_up(&mut self, r: RouterId) -> bool {
        self.set_router_state(r, false)
    }

    fn set_router_state(&mut self, r: RouterId, down: bool) -> bool {
        let idx = r.0 as usize;
        assert!(idx < self.num_routers(), "unknown router {r}");
        if self.router_down.len() < idx + 1 {
            self.router_down.resize(idx + 1, false);
        }
        if self.router_down[idx] == down {
            return false;
        }
        self.router_down[idx] = down;
        for s in 0..self.num_segments() {
            let (hops, lat) = self
                .fabric
                .distances_from_masked(s as u16, &self.router_down);
            self.seg_hops[s] = hops;
            self.seg_latency[s] = lat;
        }
        true
    }

    /// The largest finite TTL distance between any two hosts after taking
    /// any *single* router down — the headroom a membership hierarchy
    /// needs so that groups can re-form over detour paths when one router
    /// dies. Equals [`Topology::max_ttl`] when there are no routers.
    pub fn resilient_max_ttl(&self) -> u8 {
        let mut worst = self.max_ttl;
        let nr = self.num_routers();
        let ns = self.num_segments();
        for r in 0..nr {
            let mut mask = vec![false; nr];
            mask[r] = true;
            for s in 0..ns {
                let (hops, _) = self.fabric.distances_from_masked(s as u16, &mask);
                for &h in &hops {
                    if h != u8::MAX {
                        worst = worst.max(h.saturating_add(1));
                    }
                }
            }
        }
        worst
    }

    pub(crate) fn from_parts(
        host_segment: Vec<SegmentId>,
        host_link_latency: Vec<Nanos>,
        segment_hosts: Vec<Vec<HostId>>,
        seg_hops: Vec<Vec<u8>>,
        seg_latency: Vec<Vec<Nanos>>,
        fabric: graph::Fabric,
    ) -> Self {
        let mut max_ttl = 0u8;
        for row in &seg_hops {
            for &h in row {
                if h != u8::MAX {
                    max_ttl = max_ttl.max(h.saturating_add(1));
                }
            }
        }
        // A single-segment cluster still needs TTL 1 for its local group.
        if !host_segment.is_empty() {
            max_ttl = max_ttl.max(1);
        }
        let router_down = vec![false; fabric.num_routers()];
        Topology {
            host_segment,
            host_link_latency,
            segment_hosts,
            seg_hops,
            seg_latency,
            max_ttl,
            fabric,
            router_down,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_segment_distances() {
        let t = generators::single_segment(4);
        assert_eq!(t.num_hosts(), 4);
        assert_eq!(t.num_segments(), 1);
        assert_eq!(t.max_ttl(), 1);
        let hs: Vec<_> = t.hosts().collect();
        assert_eq!(t.ttl_distance(hs[0], hs[0]), 0);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert_eq!(t.ttl_distance(hs[i], hs[j]), 1);
                }
            }
        }
    }

    #[test]
    fn star_distances() {
        let t = generators::star_of_segments(3, 2);
        assert_eq!(t.num_hosts(), 6);
        assert_eq!(t.num_segments(), 3);
        assert_eq!(t.max_ttl(), 2);
        let hs: Vec<_> = t.hosts().collect();
        // Hosts 0,1 on segment 0; 2,3 on segment 1; ...
        assert_eq!(t.ttl_distance(hs[0], hs[1]), 1);
        assert_eq!(t.ttl_distance(hs[0], hs[2]), 2);
        assert_eq!(t.ttl_distance(hs[2], hs[5]), 2);
    }

    #[test]
    fn latency_is_symmetric_and_positive() {
        let t = generators::star_of_segments(3, 4);
        let hs: Vec<_> = t.hosts().collect();
        for &a in &hs {
            for &b in &hs {
                assert_eq!(t.latency(a, b), t.latency(b, a));
                if a != b {
                    assert!(t.latency(a, b) > 0);
                }
            }
        }
    }

    #[test]
    fn reachable_within_matches_ttl() {
        let t = generators::star_of_segments(4, 5);
        let h0 = t.hosts().next().unwrap();
        // TTL 1: only the 4 other hosts of the local segment.
        assert_eq!(t.reachable_within(h0, 1).len(), 4);
        // TTL 2: everyone else.
        assert_eq!(t.reachable_within(h0, 2).len(), 19);
    }

    #[test]
    fn non_transitive_example_from_paper() {
        // Paper Fig. 4: B reaches A and C within 3 hops but A<->C needs 4.
        let t = generators::non_transitive_triangle();
        let hs: Vec<_> = t.hosts().collect();
        let (a, b, c) = (hs[0], hs[1], hs[2]);
        assert_eq!(t.ttl_distance(a, b), 3);
        assert_eq!(t.ttl_distance(b, c), 3);
        assert_eq!(t.ttl_distance(a, c), 4);
    }

    #[test]
    fn chain_distances_grow_linearly() {
        let t = generators::chain_of_segments(4, 1);
        let hs: Vec<_> = t.hosts().collect();
        assert_eq!(t.ttl_distance(hs[0], hs[1]), 2);
        assert_eq!(t.ttl_distance(hs[0], hs[2]), 3);
        assert_eq!(t.ttl_distance(hs[0], hs[3]), 4);
        assert_eq!(t.max_ttl(), 4);
    }

    #[test]
    fn tree_topology_distances() {
        // 2-level router tree with fanout 2: 4 leaf segments.
        let t = generators::tree_of_segments(2, 2, 3);
        assert_eq!(t.num_segments(), 4);
        assert_eq!(t.num_hosts(), 12);
        let hs: Vec<_> = t.hosts().collect();
        // Same leaf segment.
        assert_eq!(t.ttl_distance(hs[0], hs[1]), 1);
        // Sibling leaves share one router: 1 hop.
        assert_eq!(t.ttl_distance(hs[0], hs[3]), 2);
        // Cousin leaves cross three routers (leaf, root, leaf).
        assert_eq!(t.ttl_distance(hs[0], hs[6]), 4);
    }
}
