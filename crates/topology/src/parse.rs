//! A small text format for describing cluster fabrics, so deployments
//! (and experiments) can specify topology in a file instead of code.
//!
//! ```text
//! # two racks behind a core router, one-way latencies optional
//! segment rack1
//! segment rack2
//! router  core
//! link    rack1 core 20us
//! link    rack2 core
//! host    web1  rack1
//! host    web2  rack1 100us
//! hosts   rack2 8          # bulk-add anonymous hosts
//! ```
//!
//! Directives:
//!
//! * `segment <name>` — declare a layer-2 segment;
//! * `router <name>` — declare a layer-3 router;
//! * `link <a> <b> [latency]` — connect segment↔router or router↔router;
//! * `host <name> <segment> [latency]` — one named host;
//! * `hosts <segment> <count>` — `count` anonymous hosts;
//! * `#` starts a comment; blank lines are ignored.
//!
//! Latencies accept `ns`, `us`/`µs`, `ms`, or `s` suffixes.

use crate::{HostId, Nanos, RouterId, SegmentId, Topology, TopologyBuilder};
use std::collections::BTreeMap;

/// Error from [`parse_topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for TopoParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "topology line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TopoParseError {}

/// A parsed topology plus the name → id mappings for named entities.
#[derive(Debug)]
pub struct ParsedTopology {
    pub topology: Topology,
    pub hosts: BTreeMap<String, HostId>,
    pub segments: BTreeMap<String, SegmentId>,
    pub routers: BTreeMap<String, RouterId>,
}

/// Parse the fabric description format.
pub fn parse_topology(text: &str) -> Result<ParsedTopology, TopoParseError> {
    let mut b = TopologyBuilder::new();
    let mut segments: BTreeMap<String, SegmentId> = BTreeMap::new();
    let mut routers: BTreeMap<String, RouterId> = BTreeMap::new();
    let mut hosts: BTreeMap<String, HostId> = BTreeMap::new();
    let mut anon = 0usize;

    let err = |line: usize, m: String| TopoParseError { line, message: m };

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let directive = parts.next().unwrap();
        let args: Vec<&str> = parts.collect();
        match directive {
            "segment" => {
                let [name] = args[..] else {
                    return Err(err(line_no, "usage: segment <name>".into()));
                };
                if segments.contains_key(name) || routers.contains_key(name) {
                    return Err(err(line_no, format!("duplicate name {name:?}")));
                }
                segments.insert(name.to_string(), b.add_segment());
            }
            "router" => {
                let [name] = args[..] else {
                    return Err(err(line_no, "usage: router <name>".into()));
                };
                if segments.contains_key(name) || routers.contains_key(name) {
                    return Err(err(line_no, format!("duplicate name {name:?}")));
                }
                routers.insert(name.to_string(), b.add_router());
            }
            "link" => {
                if args.len() < 2 || args.len() > 3 {
                    return Err(err(line_no, "usage: link <a> <b> [latency]".into()));
                }
                let latency = match args.get(2) {
                    Some(l) => Some(parse_latency(l).map_err(|m| err(line_no, m))?),
                    None => None,
                };
                let (a, bb) = (args[0], args[1]);
                match (
                    segments.get(a),
                    routers.get(a),
                    segments.get(bb),
                    routers.get(bb),
                ) {
                    (Some(&s), _, _, Some(&r)) | (_, Some(&r), Some(&s), _) => {
                        b.link_segment_router(s, r, latency)
                    }
                    (_, Some(&ra), _, Some(&rb)) => b.link_routers(ra, rb, latency),
                    (Some(_), _, Some(_), _) => {
                        return Err(err(
                            line_no,
                            "cannot link two segments directly; put a router between them".into(),
                        ))
                    }
                    _ => return Err(err(line_no, format!("unknown endpoint in {a:?} {bb:?}"))),
                }
            }
            "host" => {
                if args.len() < 2 || args.len() > 3 {
                    return Err(err(
                        line_no,
                        "usage: host <name> <segment> [latency]".into(),
                    ));
                }
                let name = args[0];
                if hosts.contains_key(name) {
                    return Err(err(line_no, format!("duplicate host {name:?}")));
                }
                let seg = *segments
                    .get(args[1])
                    .ok_or_else(|| err(line_no, format!("unknown segment {:?}", args[1])))?;
                let latency = match args.get(2) {
                    Some(l) => Some(parse_latency(l).map_err(|m| err(line_no, m))?),
                    None => None,
                };
                hosts.insert(name.to_string(), b.add_host(seg, latency));
            }
            "hosts" => {
                let [seg_name, count] = args[..] else {
                    return Err(err(line_no, "usage: hosts <segment> <count>".into()));
                };
                let seg = *segments
                    .get(seg_name)
                    .ok_or_else(|| err(line_no, format!("unknown segment {seg_name:?}")))?;
                let count: usize = count
                    .parse()
                    .map_err(|_| err(line_no, format!("bad count {count:?}")))?;
                for h in b.add_hosts(seg, count) {
                    hosts.insert(format!("{seg_name}.{anon}"), h);
                    anon += 1;
                }
            }
            other => return Err(err(line_no, format!("unknown directive {other:?}"))),
        }
    }

    Ok(ParsedTopology {
        topology: b.build(),
        hosts,
        segments,
        routers,
    })
}

/// Parse `20us` / `1500ns` / `3ms` / `2s` into nanoseconds.
fn parse_latency(s: &str) -> Result<Nanos, String> {
    let (num, mult) = if let Some(v) = s.strip_suffix("ns") {
        (v, 1u64)
    } else if let Some(v) = s.strip_suffix("us").or_else(|| s.strip_suffix("µs")) {
        (v, 1_000)
    } else if let Some(v) = s.strip_suffix("ms") {
        (v, 1_000_000)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1_000_000_000)
    } else {
        return Err(format!("latency {s:?} needs a ns/us/ms/s suffix"));
    };
    let n: f64 = num
        .parse()
        .map_err(|_| format!("bad latency number {num:?}"))?;
    if n.is_nan() || n < 0.0 || n.is_infinite() {
        return Err(format!("latency {s:?} out of range"));
    }
    Ok((n * mult as f64) as Nanos)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# two racks behind a core
segment rack1
segment rack2
router core
link rack1 core 20us
link rack2 core
host web1 rack1
host web2 rack1 100us
hosts rack2 3
"#;

    #[test]
    fn parses_sample() {
        let p = parse_topology(SAMPLE).unwrap();
        assert_eq!(p.topology.num_hosts(), 5);
        assert_eq!(p.topology.num_segments(), 2);
        assert_eq!(p.hosts.len(), 5);
        let web1 = p.hosts["web1"];
        let web2 = p.hosts["web2"];
        let anon = p.hosts["rack2.0"];
        assert_eq!(p.topology.ttl_distance(web1, web2), 1);
        assert_eq!(p.topology.ttl_distance(web1, anon), 2);
    }

    #[test]
    fn custom_latencies_apply() {
        let p = parse_topology(SAMPLE).unwrap();
        let web1 = p.hosts["web1"];
        let web2 = p.hosts["web2"];
        // web2 has a 100us host link; web1 the 50us default.
        assert_eq!(p.topology.latency(web1, web2), 50_000 + 100_000);
    }

    #[test]
    fn latency_units() {
        assert_eq!(parse_latency("1500ns").unwrap(), 1_500);
        assert_eq!(parse_latency("20us").unwrap(), 20_000);
        assert_eq!(parse_latency("3ms").unwrap(), 3_000_000);
        assert_eq!(parse_latency("2s").unwrap(), 2_000_000_000);
        assert_eq!(parse_latency("1.5ms").unwrap(), 1_500_000);
        assert!(parse_latency("20").is_err());
        assert!(parse_latency("xus").is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_topology("segment a\nhost x b\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown segment"));

        let e = parse_topology("bogus thing\n").unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse_topology("segment a\nsegment a\n").unwrap_err();
        assert!(e.message.contains("duplicate"));

        let e = parse_topology("segment a\nsegment b\nlink a b\n").unwrap_err();
        assert!(e.message.contains("router between"));
    }

    #[test]
    fn router_to_router_links() {
        let p = parse_topology(
            "segment a\nsegment b\nrouter r1\nrouter r2\n\
             link a r1\nlink r1 r2 5ms\nlink r2 b\nhost h1 a\nhost h2 b\n",
        )
        .unwrap();
        let (h1, h2) = (p.hosts["h1"], p.hosts["h2"]);
        assert_eq!(p.topology.ttl_distance(h1, h2), 3);
        assert!(p.topology.latency(h1, h2) > 5_000_000);
    }

    #[test]
    fn comments_and_blanks_ok() {
        let p = parse_topology("# nothing\n\n  # more\nsegment s\nhosts s 1\n").unwrap();
        assert_eq!(p.topology.num_hosts(), 1);
    }
}
