//! Mutable builder for [`Topology`].

use crate::graph::{Fabric, Vertex};
use crate::{HostId, Nanos, RouterId, SegmentId, Topology, MICROS};

/// Default one-way latency of a host NIC ↔ top-of-rack switch link
/// (~50 µs, in the ballpark of the paper's Fast Ethernet testbed).
pub const DEFAULT_HOST_LATENCY: Nanos = 50 * MICROS;
/// Default one-way latency of a switch ↔ router or router ↔ router link.
pub const DEFAULT_FABRIC_LATENCY: Nanos = 20 * MICROS;

/// Incrementally constructs a [`Topology`].
///
/// ```
/// use tamp_topology::TopologyBuilder;
///
/// let mut b = TopologyBuilder::new();
/// let s0 = b.add_segment();
/// let s1 = b.add_segment();
/// let r = b.add_router();
/// b.link_segment_router(s0, r, None);
/// b.link_segment_router(s1, r, None);
/// let a = b.add_host(s0, None);
/// let c = b.add_host(s1, None);
/// let topo = b.build();
/// assert_eq!(topo.ttl_distance(a, c), 2);
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    host_segment: Vec<SegmentId>,
    host_link_latency: Vec<Nanos>,
    num_segments: u16,
    num_routers: u16,
    links: Vec<(LinkEnd, LinkEnd, Nanos)>,
}

#[derive(Debug, Clone, Copy)]
enum LinkEnd {
    Seg(u16),
    Router(u16),
}

impl TopologyBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a layer-2 segment (broadcast domain).
    pub fn add_segment(&mut self) -> SegmentId {
        let id = SegmentId(self.num_segments);
        self.num_segments += 1;
        id
    }

    /// Add a layer-3 router.
    pub fn add_router(&mut self) -> RouterId {
        let id = RouterId(self.num_routers);
        self.num_routers += 1;
        id
    }

    /// Attach a host to a segment. `link_latency` defaults to
    /// [`DEFAULT_HOST_LATENCY`].
    pub fn add_host(&mut self, seg: SegmentId, link_latency: Option<Nanos>) -> HostId {
        assert!(seg.0 < self.num_segments, "unknown segment {seg}");
        let id = HostId(self.host_segment.len() as u32);
        self.host_segment.push(seg);
        self.host_link_latency
            .push(link_latency.unwrap_or(DEFAULT_HOST_LATENCY));
        id
    }

    /// Attach `n` hosts to a segment, returning their ids.
    pub fn add_hosts(&mut self, seg: SegmentId, n: usize) -> Vec<HostId> {
        (0..n).map(|_| self.add_host(seg, None)).collect()
    }

    /// Link a segment to a router. `latency` defaults to
    /// [`DEFAULT_FABRIC_LATENCY`].
    pub fn link_segment_router(&mut self, s: SegmentId, r: RouterId, latency: Option<Nanos>) {
        assert!(s.0 < self.num_segments, "unknown segment {s}");
        assert!(r.0 < self.num_routers, "unknown router {r}");
        self.links.push((
            LinkEnd::Seg(s.0),
            LinkEnd::Router(r.0),
            latency.unwrap_or(DEFAULT_FABRIC_LATENCY),
        ));
    }

    /// Link two routers. `latency` defaults to [`DEFAULT_FABRIC_LATENCY`].
    pub fn link_routers(&mut self, a: RouterId, b: RouterId, latency: Option<Nanos>) {
        assert!(a.0 < self.num_routers, "unknown router {a}");
        assert!(b.0 < self.num_routers, "unknown router {b}");
        assert_ne!(a, b, "cannot link a router to itself");
        self.links.push((
            LinkEnd::Router(a.0),
            LinkEnd::Router(b.0),
            latency.unwrap_or(DEFAULT_FABRIC_LATENCY),
        ));
    }

    /// Finalize: compute all segment-pair distances and produce the
    /// immutable [`Topology`].
    pub fn build(self) -> Topology {
        let ns = self.num_segments as usize;
        let mut fabric = Fabric::new(ns, self.num_routers as usize);
        for (a, b, lat) in &self.links {
            let va = match a {
                LinkEnd::Seg(s) => Vertex::Segment(*s),
                LinkEnd::Router(r) => Vertex::Router(*r),
            };
            let vb = match b {
                LinkEnd::Seg(s) => Vertex::Segment(*s),
                LinkEnd::Router(r) => Vertex::Router(*r),
            };
            fabric.link(va, vb, *lat);
        }

        let mut seg_hops = Vec::with_capacity(ns);
        let mut seg_latency = Vec::with_capacity(ns);
        for s in 0..ns {
            let (hops, lat) = fabric.distances_from(s as u16);
            seg_hops.push(hops);
            seg_latency.push(lat);
        }

        let mut segment_hosts = vec![Vec::new(); ns];
        for (i, seg) in self.host_segment.iter().enumerate() {
            segment_hosts[seg.0 as usize].push(HostId(i as u32));
        }

        Topology::from_parts(
            self.host_segment,
            self.host_link_latency,
            segment_hosts,
            seg_hops,
            seg_latency,
            fabric,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let mut b = TopologyBuilder::new();
        let s = b.add_segment();
        let hs = b.add_hosts(s, 3);
        let t = b.build();
        assert_eq!(t.num_hosts(), 3);
        assert_eq!(t.hosts_on(s), &hs[..]);
        assert_eq!(t.segment_of(hs[1]), s);
    }

    #[test]
    #[should_panic(expected = "unknown segment")]
    fn host_on_missing_segment_panics() {
        let mut b = TopologyBuilder::new();
        b.add_host(SegmentId(0), None);
    }

    #[test]
    #[should_panic(expected = "cannot link a router to itself")]
    fn self_router_link_panics() {
        let mut b = TopologyBuilder::new();
        let r = b.add_router();
        b.link_routers(r, r, None);
    }

    #[test]
    fn custom_latency_respected() {
        let mut b = TopologyBuilder::new();
        let s = b.add_segment();
        let a = b.add_host(s, Some(100));
        let c = b.add_host(s, Some(300));
        let t = b.build();
        assert_eq!(t.latency(a, c), 400);
    }

    #[test]
    fn empty_topology_is_valid() {
        let t = TopologyBuilder::new().build();
        assert_eq!(t.num_hosts(), 0);
        assert_eq!(t.max_ttl(), 0);
    }
}
