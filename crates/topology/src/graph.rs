//! Internal graph over segments and routers, with shortest-path search.
//!
//! Vertices are either layer-2 segments or layer-3 routers; edges are
//! physical links with a one-way latency. The metric the protocol cares
//! about is lexicographic: minimize the number of *router* vertices
//! traversed first (that is what the IP TTL counts), then total latency.

use crate::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A vertex in the fabric graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Vertex {
    Segment(u16),
    Router(u16),
}

#[derive(Debug, Clone)]
pub(crate) struct Fabric {
    /// Adjacency list indexed by dense vertex index.
    adj: Vec<Vec<(usize, Nanos)>>,
    /// Which vertices are routers (these cost one TTL hop to pass through).
    is_router: Vec<bool>,
    num_segments: usize,
}

/// Path cost: router hops first, then latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cost {
    hops: u32,
    latency: Nanos,
}

impl Cost {
    const INF: Cost = Cost {
        hops: u32::MAX,
        latency: Nanos::MAX,
    };
}

impl Ord for Cost {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.hops, self.latency).cmp(&(other.hops, other.latency))
    }
}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap entry (reversed ordering for BinaryHeap).
#[derive(PartialEq, Eq)]
struct HeapEntry {
    cost: Cost,
    vertex: usize,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.cost.cmp(&self.cost)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Fabric {
    pub(crate) fn new(num_segments: usize, num_routers: usize) -> Self {
        Fabric {
            adj: vec![Vec::new(); num_segments + num_routers],
            is_router: (0..num_segments + num_routers)
                .map(|i| i >= num_segments)
                .collect(),
            num_segments,
        }
    }

    pub(crate) fn num_routers(&self) -> usize {
        self.adj.len() - self.num_segments
    }

    fn index(&self, v: Vertex) -> usize {
        match v {
            Vertex::Segment(s) => s as usize,
            Vertex::Router(r) => self.num_segments + r as usize,
        }
    }

    /// Add an undirected link with the given one-way latency.
    pub(crate) fn link(&mut self, a: Vertex, b: Vertex, latency: Nanos) {
        let (ia, ib) = (self.index(a), self.index(b));
        self.adj[ia].push((ib, latency));
        self.adj[ib].push((ia, latency));
    }

    /// Dijkstra from one segment to all segments, under the (hops, latency)
    /// lexicographic metric. Router hops are counted when *leaving* a
    /// router vertex, so a path Seg→R→Seg costs 1 hop.
    ///
    /// Returns `(hops, latency)` per segment; unreachable segments get
    /// `(u8::MAX, Nanos::MAX)`.
    pub(crate) fn distances_from(&self, seg: u16) -> (Vec<u8>, Vec<Nanos>) {
        self.distances_from_masked(seg, &[])
    }

    /// [`Fabric::distances_from`] with some routers administratively down:
    /// `router_down[r]` (indexed by router id, missing entries = up) makes
    /// router `r` unusable, so paths must route around it — this is the
    /// primitive behind live TTL re-scoping when a router dies mid-run.
    pub(crate) fn distances_from_masked(
        &self,
        seg: u16,
        router_down: &[bool],
    ) -> (Vec<u8>, Vec<Nanos>) {
        let n = self.adj.len();
        let down = |v: usize| -> bool {
            v >= self.num_segments && router_down.get(v - self.num_segments) == Some(&true)
        };
        let mut best = vec![Cost::INF; n];
        let src = seg as usize;
        best[src] = Cost {
            hops: 0,
            latency: 0,
        };
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            cost: best[src],
            vertex: src,
        });
        while let Some(HeapEntry { cost, vertex }) = heap.pop() {
            if cost != best[vertex] {
                continue;
            }
            for &(next, lat) in &self.adj[vertex] {
                if down(next) {
                    continue;
                }
                // Passing *through* a router decrements the TTL once. We
                // charge the hop on the edge that enters a router vertex;
                // entering a segment vertex is free. This yields:
                //   Seg -> R -> Seg        = 1 hop
                //   Seg -> R -> R -> Seg   = 2 hops
                let extra_hop = u32::from(self.is_router[next]);
                let cand = Cost {
                    hops: cost.hops + extra_hop,
                    latency: cost.latency + lat,
                };
                if cand < best[next] {
                    best[next] = cand;
                    heap.push(HeapEntry {
                        cost: cand,
                        vertex: next,
                    });
                }
            }
        }
        let hops = (0..self.num_segments)
            .map(|i| {
                let h = best[i].hops;
                if h == u32::MAX {
                    u8::MAX
                } else {
                    u8::try_from(h).unwrap_or(u8::MAX)
                }
            })
            .collect();
        let lat = (0..self.num_segments).map(|i| best[i].latency).collect();
        (hops, lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_segments_via_one_router() {
        let mut f = Fabric::new(2, 1);
        f.link(Vertex::Segment(0), Vertex::Router(0), 10);
        f.link(Vertex::Segment(1), Vertex::Router(0), 10);
        let (hops, lat) = f.distances_from(0);
        assert_eq!(hops[0], 0);
        assert_eq!(hops[1], 1);
        assert_eq!(lat[1], 20);
    }

    #[test]
    fn two_routers_cost_two_hops() {
        let mut f = Fabric::new(2, 2);
        f.link(Vertex::Segment(0), Vertex::Router(0), 5);
        f.link(Vertex::Router(0), Vertex::Router(1), 5);
        f.link(Vertex::Router(1), Vertex::Segment(1), 5);
        let (hops, lat) = f.distances_from(0);
        assert_eq!(hops[1], 2);
        assert_eq!(lat[1], 15);
    }

    #[test]
    fn prefers_fewer_hops_even_if_slower() {
        // Two paths from seg0 to seg1: one router at latency 100+100, or
        // two routers at latency 1+1+1. TTL metric must pick the 1-hop path.
        let mut f = Fabric::new(2, 3);
        f.link(Vertex::Segment(0), Vertex::Router(0), 100);
        f.link(Vertex::Router(0), Vertex::Segment(1), 100);
        f.link(Vertex::Segment(0), Vertex::Router(1), 1);
        f.link(Vertex::Router(1), Vertex::Router(2), 1);
        f.link(Vertex::Router(2), Vertex::Segment(1), 1);
        let (hops, lat) = f.distances_from(0);
        assert_eq!(hops[1], 1);
        assert_eq!(lat[1], 200);
    }

    #[test]
    fn unreachable_is_max() {
        let f = Fabric::new(2, 0);
        let (hops, lat) = f.distances_from(0);
        assert_eq!(hops[1], u8::MAX);
        assert_eq!(lat[1], Nanos::MAX);
    }

    #[test]
    fn masked_router_forces_detour() {
        // Primary 1-hop path through r0; backup 2-hop path through r1, r2.
        let mut f = Fabric::new(2, 3);
        f.link(Vertex::Segment(0), Vertex::Router(0), 100);
        f.link(Vertex::Router(0), Vertex::Segment(1), 100);
        f.link(Vertex::Segment(0), Vertex::Router(1), 1);
        f.link(Vertex::Router(1), Vertex::Router(2), 1);
        f.link(Vertex::Router(2), Vertex::Segment(1), 1);
        let (hops, lat) = f.distances_from_masked(0, &[true, false, false]);
        assert_eq!(hops[1], 2);
        assert_eq!(lat[1], 3);
        // All three routers down: unreachable.
        let (hops, _) = f.distances_from_masked(0, &[true, true, true]);
        assert_eq!(hops[1], u8::MAX);
        // Empty mask means everything is up.
        let (hops, _) = f.distances_from_masked(0, &[]);
        assert_eq!(hops[1], 1);
    }

    #[test]
    fn ties_broken_by_latency() {
        // Same hop count via R0 (latency 50) or R1 (latency 10).
        let mut f = Fabric::new(2, 2);
        f.link(Vertex::Segment(0), Vertex::Router(0), 25);
        f.link(Vertex::Router(0), Vertex::Segment(1), 25);
        f.link(Vertex::Segment(0), Vertex::Router(1), 5);
        f.link(Vertex::Router(1), Vertex::Segment(1), 5);
        let (hops, lat) = f.distances_from(0);
        assert_eq!(hops[1], 1);
        assert_eq!(lat[1], 10);
    }
}
