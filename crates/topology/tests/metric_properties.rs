//! Property tests: TTL distance must behave like a (router-hop) metric
//! on every generated topology, because the whole group-formation scheme
//! is built on it.

use proptest::prelude::*;
use tamp_topology::{generators, Topology};

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (1usize..20).prop_map(generators::single_segment),
        (1usize..6, 1usize..6).prop_map(|(s, h)| generators::star_of_segments(s, h)),
        (1usize..5, 1usize..4).prop_map(|(s, h)| generators::chain_of_segments(s, h)),
        (1usize..3, 1usize..3, 1usize..4)
            .prop_map(|(d, f, h)| generators::tree_of_segments(d, f, h)),
        (1usize..3, 1usize..3, 1usize..3, 1usize..3)
            .prop_map(|(p, s, sp, h)| generators::fat_tree(p, s, sp, h)),
        Just(generators::non_transitive_triangle()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn ttl_distance_is_a_metric(topo in arb_topology()) {
        let hosts: Vec<_> = topo.hosts().collect();
        for &a in &hosts {
            // Identity.
            prop_assert_eq!(topo.ttl_distance(a, a), 0);
            for &b in &hosts {
                // Symmetry.
                prop_assert_eq!(topo.ttl_distance(a, b), topo.ttl_distance(b, a));
                if a != b {
                    prop_assert!(topo.ttl_distance(a, b) >= 1);
                }
                // Triangle inequality on router hops (= ttl - 1).
                for &c in &hosts {
                    if a == b || b == c || a == c {
                        continue;
                    }
                    let ab = topo.ttl_distance(a, b) as u32 - 1;
                    let bc = topo.ttl_distance(b, c) as u32 - 1;
                    let ac = topo.ttl_distance(a, c) as u32 - 1;
                    prop_assert!(
                        ac <= ab + bc,
                        "hop triangle violated: d({a},{c})={ac} > d({a},{b})={ab} + d({b},{c})={bc}"
                    );
                }
            }
        }
    }

    #[test]
    fn latency_is_a_metric_too(topo in arb_topology()) {
        let hosts: Vec<_> = topo.hosts().collect();
        for &a in &hosts {
            prop_assert_eq!(topo.latency(a, a), 0);
            for &b in &hosts {
                prop_assert_eq!(topo.latency(a, b), topo.latency(b, a));
                if a != b {
                    prop_assert!(topo.latency(a, b) > 0);
                }
            }
        }
    }

    #[test]
    fn reachable_sets_grow_with_ttl(topo in arb_topology()) {
        let hosts: Vec<_> = topo.hosts().collect();
        for &h in hosts.iter().take(4) {
            let mut prev = 0;
            for ttl in 1..=topo.max_ttl() {
                let n = topo.reachable_within(h, ttl).len();
                prop_assert!(n >= prev, "reachability shrank as TTL grew");
                prev = n;
            }
            // At max TTL, everything is reachable in these generators.
            prop_assert_eq!(prev, hosts.len() - 1);
        }
    }

    #[test]
    fn same_segment_means_ttl_one(topo in arb_topology()) {
        let hosts: Vec<_> = topo.hosts().collect();
        for &a in &hosts {
            for &b in &hosts {
                if a != b && topo.segment_of(a) == topo.segment_of(b) {
                    prop_assert_eq!(topo.ttl_distance(a, b), 1);
                }
            }
        }
    }
}
