//! Membership service configuration, including the paper's Fig. 7
//! configuration-file format.
//!
//! ```text
//! *SYSTEM
//! SHM_KEY    = 999
//! MAX_TTL    = 4
//! MCAST_ADDR = 239.255.0.2
//! MCAST_PORT = 10050
//! MCAST_FREQ = 1
//! MAX_LOSS   = 5
//!
//! *SERVICE
//! [HTTP]
//!     PARTITION = 0
//!     Port      = 8080
//! [Cache]
//!     PARTITION = 2
//! ```

use tamp_netsim::ChannelId;
use tamp_topology::{Nanos, MILLIS, SECS};
use tamp_wire::{PartitionSet, ServiceDecl};

/// How a timed-out (and, with a suspicion window, unrefuted) member is
/// ultimately removed from the view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalDiscipline {
    /// The paper's discipline: each observer confirms its own timeouts
    /// independently (after the refutable suspicion window, if enabled).
    Timeout,
    /// Rapid-style multi-process cut detection (Suresh et al., 2018):
    /// a timeout only makes the observer broadcast an `Alert` report.
    /// Every node aggregates reports per subject, counting *distinct*
    /// reporters, and removes nothing until the report pattern is
    /// *stable* — every reported subject has reached the high watermark
    /// `cut_high_watermark` (clamped to the observer count in small
    /// groups) and the batch has been quiescent for `cut_batch_delay`.
    /// The whole stable cut is then applied as one batched view change.
    /// Subjects stuck between one report and the watermark (e.g. one
    /// asymmetric reporter under a gray partition) block nothing and
    /// expire after `cut_report_ttl`; refutations clear them instantly.
    CutDetection,
}

/// All tunables of one membership node.
#[derive(Debug, Clone)]
pub struct MembershipConfig {
    /// Base multicast channel; level `k` uses `base_channel + k`
    /// ("all other channels can be derived from the base channel and a
    /// TTL value").
    pub base_channel: ChannelId,
    /// Highest TTL the group-formation process may use (`MAX_TTL`). The
    /// top group level is `max_ttl - 1`.
    pub max_ttl: u8,
    /// Heartbeat multicast period (1 / `MCAST_FREQ`).
    pub heartbeat_period: Nanos,
    /// Consecutive heartbeat losses tolerated before declaring a node
    /// dead (`MAX_LOSS`): the level-0 failure timeout is
    /// `max_loss × heartbeat_period`.
    pub max_loss: u32,
    /// Shared-memory key from the paper's config format. Cosmetic here
    /// (identifies the directory handle).
    pub shm_key: u32,
    /// Events carried per update message (new event + piggybacked
    /// predecessors). The paper uses 4 (current + last 3).
    pub piggyback_window: usize,
    /// Per-level timeout scaling: `timeout(ℓ) = max_loss × period ×
    /// (1 + ℓ × level_timeout_factor)`. "Higher level groups are assigned
    /// with larger timeout values" so a lower group can re-elect before
    /// the higher group purges its subtree.
    pub level_timeout_factor: f64,
    /// Random phase jitter applied to the first heartbeat so nodes do not
    /// beat in lockstep.
    pub startup_jitter: Nanos,
    /// How long a node listens on a newly joined channel before starting
    /// an election (it must first learn of any existing leader).
    pub listen_period: Nanos,
    /// How long an election candidate waits for an objection (`Alive`)
    /// or a rival `Coordinator` before claiming leadership.
    pub election_timeout: Nanos,
    /// How long non-backup members wait for the backup leader's takeover
    /// before starting a full election.
    pub backup_grace: Nanos,
    /// Sweep granularity for timeout checks.
    pub sweep_period: Nanos,
    /// Anti-entropy period: each group leader multicasts a compact
    /// (id, incarnation) digest of its directory into the groups it
    /// leads every this often, letting members detect and repair missing
    /// or orphaned entries. 0 disables. Robustness extension over the
    /// paper; ablation A2 quantifies it.
    pub anti_entropy_period: Nanos,
    /// How long a death declaration suppresses same-incarnation rejoins
    /// in the local directory (see `tamp_directory`).
    pub tombstone_ttl: Nanos,
    /// Use the adaptive (EWMA inter-arrival) failure detector instead of
    /// the paper's fixed `max_loss × period` timeout. Under packet loss
    /// the adaptive deadline stretches automatically; ablation A7
    /// quantifies the trade-off. Off by default (paper-faithful).
    pub adaptive_timeout: bool,
    /// Base suspicion window (docs/ROBUSTNESS.md): a timed-out member is
    /// held in a refutable `Suspect` state this long before the suspicion
    /// is confirmed as a `Leave`. Level-scaled like `timeout`, and
    /// stretched per node by flap damping. 0 disables the suspicion layer
    /// (timed-out members are removed immediately, the paper's behavior).
    pub suspicion_window: Nanos,
    /// How long a dead leader's relayed subtree is quarantined (kept in
    /// the directory, marked suspect-as-a-unit) waiting for a successor
    /// leader to re-vouch for it, instead of being purged outright. 0
    /// falls back to the paper's immediate subtree purge.
    pub quarantine_window: Nanos,
    /// Flap damping à la Rapid: each *refuted* suspicion of a node adds
    /// one unit of instability, decaying with this half-life. A node with
    /// instability `u` gets its suspicion window scaled by
    /// `1 + min(u, flap_score_cap)`. 0 disables damping.
    pub flap_half_life: Nanos,
    /// Upper bound on the flap-damping multiplier increment, so a
    /// persistently flapping node's confirmation latency stays bounded.
    pub flap_score_cap: f64,
    /// Graceful degradation under measured heavy loss: when the EWMA
    /// inter-arrival estimate of a peer (the A7 detector signal) exceeds
    /// this multiple of the heartbeat period, the effective timeout for
    /// that peer stretches proportionally (widening `max_loss` in effect)
    /// up to `degrade_max_stretch`. 0.0 disables.
    pub degrade_stretch_threshold: f64,
    /// Ceiling on the loss-degradation timeout stretch factor.
    pub degrade_max_stretch: f64,
    /// How timed-out members are removed: independent per-observer
    /// timeouts (the paper) or Rapid-style aggregated cut detection.
    pub removal_discipline: RemovalDiscipline,
    /// Cut-detection low watermark `L`: a subject with `[1, L)` distinct
    /// reporters is considered noise and never blocks a batch (it still
    /// expires via `cut_report_ttl`). Subjects in `[L, H)` mark the cut
    /// *unstable* and defer the view change.
    pub cut_low_watermark: usize,
    /// Cut-detection high watermark `H`: distinct reporters needed before
    /// a subject joins the stable cut. Clamped to the number of live
    /// observers at the subject's level so small groups stay live.
    pub cut_high_watermark: usize,
    /// Quiescence delay before a stable cut is applied as a batched view
    /// change: the batch executes only after no report for any pending
    /// subject has arrived for this long.
    pub cut_batch_delay: Nanos,
    /// How long an unconfirmed report (reporter, subject) vote stays
    /// valid. Bounds how long a lone gray-partition reporter can keep a
    /// subject on the books.
    pub cut_report_ttl: Nanos,
    /// Services this node exports (`*SERVICE` sections).
    /// Trust pre-seeded directories at boot: groups start `bootstrapped`
    /// (no pull from the first leader heard) and an *initial* leadership
    /// claim skips the takeover snapshot exchange. Used by the harness to
    /// start 10k-node runs in a converged state; mid-run leader deaths
    /// still trigger the full §3.1.2 exchange. See
    /// [`MembershipNode::preload`](crate::MembershipNode::preload).
    pub warm_start: bool,
    pub services: Vec<ServiceDecl>,
    /// Machine attributes published in this node's record.
    pub attrs: Vec<(String, String)>,
    /// If nonzero, pad this node's heartbeat record to this encoded size
    /// (the paper's measured heartbeat is 228 bytes).
    pub pad_heartbeat_to: usize,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            base_channel: ChannelId(0),
            max_ttl: 4,
            heartbeat_period: SECS,
            max_loss: 5,
            shm_key: 999,
            piggyback_window: 4,
            level_timeout_factor: 0.5,
            startup_jitter: 500 * MILLIS,
            listen_period: 2 * SECS + 500 * MILLIS,
            election_timeout: 500 * MILLIS,
            backup_grace: 500 * MILLIS,
            sweep_period: 100 * MILLIS,
            anti_entropy_period: 10 * SECS,
            tombstone_ttl: 15 * SECS,
            adaptive_timeout: false,
            suspicion_window: 2 * SECS,
            quarantine_window: 10 * SECS,
            flap_half_life: 30 * SECS,
            flap_score_cap: 3.0,
            degrade_stretch_threshold: 1.5,
            degrade_max_stretch: 3.0,
            removal_discipline: RemovalDiscipline::Timeout,
            cut_low_watermark: 2,
            cut_high_watermark: 3,
            cut_batch_delay: SECS,
            cut_report_ttl: 8 * SECS,
            warm_start: false,
            services: Vec::new(),
            attrs: Vec::new(),
            pad_heartbeat_to: 228,
        }
    }
}

/// Error from [`MembershipConfig::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl MembershipConfig {
    /// Failure timeout for group level `level`.
    pub fn timeout(&self, level: u8) -> Nanos {
        let base = self.max_loss as u64 * self.heartbeat_period;
        let scaled = base as f64 * (1.0 + level as f64 * self.level_timeout_factor);
        scaled as Nanos
    }

    /// Suspicion window for group level `level`: scaled with the same
    /// per-level factor as [`MembershipConfig::timeout`], so higher-level
    /// suspicions (whose refutations must travel further) get more time.
    pub fn suspicion(&self, level: u8) -> Nanos {
        let scaled =
            self.suspicion_window as f64 * (1.0 + level as f64 * self.level_timeout_factor);
        scaled as Nanos
    }

    /// Multicast channel for group level `level`.
    pub fn channel(&self, level: u8) -> ChannelId {
        self.base_channel.for_level(level)
    }

    /// TTL used by group level `level`.
    pub fn ttl(&self, level: u8) -> u8 {
        level + 1
    }

    /// Highest group level (`max_ttl - 1`).
    pub fn top_level(&self) -> u8 {
        self.max_ttl.saturating_sub(1)
    }

    /// The tombstone TTL actually installed in the directory.
    ///
    /// Under `Timeout` this is `tombstone_ttl` as configured. Under
    /// `CutDetection` it is stretched to at least the relayed-rot
    /// horizon (`6 × anti_entropy_period`): the watermark filter means
    /// a side of a real partition with too few cross-cut observers
    /// (correctly) removes nothing, so at heal it still advertises
    /// nodes the other side buried long ago. The digest death
    /// back-push is the only channel that reconciles that divided
    /// knowledge, and it only fires while the tombstone is fresh —
    /// with the short `Timeout`-tuned TTL a death near the end of a
    /// long partition expires before the first cross-cut digest and
    /// the stale side re-infects everyone with an uncovered,
    /// mutually-re-vouched ghost entry. Long tombstones are free in
    /// this mode: removals need multi-observer agreement, and a
    /// wrongly buried *live* node refutes `Leave(self)` by incarnation
    /// bump, which beats any tombstone immediately.
    pub fn effective_tombstone_ttl(&self) -> Nanos {
        match self.removal_discipline {
            RemovalDiscipline::CutDetection if self.anti_entropy_period > 0 => {
                self.tombstone_ttl.max(6 * self.anti_entropy_period)
            }
            _ => self.tombstone_ttl,
        }
    }

    /// Parse the paper's Fig. 7 configuration format. Unknown `*SYSTEM`
    /// keys are rejected; unknown keys inside a `[Service]` section become
    /// service attributes (the paper's "service specific parameters").
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut cfg = MembershipConfig::default();
        let err = |line: usize, m: &str| ConfigError {
            line,
            message: m.to_string(),
        };

        #[derive(PartialEq)]
        enum Section {
            None,
            System,
            Service,
        }
        let mut section = Section::None;
        let mut current_service: Option<ServiceDecl> = None;

        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('*') {
                if let Some(s) = current_service.take() {
                    cfg.services.push(s);
                }
                section = match rest.trim() {
                    "SYSTEM" => Section::System,
                    "SERVICE" => Section::Service,
                    other => return Err(err(line_no, &format!("unknown section *{other}"))),
                };
                continue;
            }
            if line.starts_with('[') {
                if section != Section::Service {
                    return Err(err(line_no, "service block outside *SERVICE"));
                }
                let name = line
                    .strip_prefix('[')
                    .and_then(|l| l.strip_suffix(']'))
                    .ok_or_else(|| err(line_no, "malformed [Service] header"))?;
                if let Some(s) = current_service.take() {
                    cfg.services.push(s);
                }
                current_service = Some(ServiceDecl::new(name.trim(), PartitionSet::empty()));
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(line_no, "expected KEY = VALUE"))?;
            let (key, value) = (key.trim(), value.trim());
            match section {
                Section::System => match key {
                    "SHM_KEY" => {
                        cfg.shm_key = value.parse().map_err(|_| err(line_no, "bad SHM_KEY"))?
                    }
                    "MAX_TTL" => {
                        cfg.max_ttl = value.parse().map_err(|_| err(line_no, "bad MAX_TTL"))?
                    }
                    "MCAST_ADDR" => {
                        // Hash the dotted-quad into a channel id so distinct
                        // addresses get distinct simulated channels.
                        let h: u32 = value
                            .split('.')
                            .filter_map(|p| p.parse::<u32>().ok())
                            .fold(0, |a, b| a.wrapping_mul(31).wrapping_add(b));
                        cfg.base_channel = ChannelId((h % 60000) as u16);
                    }
                    "MCAST_PORT" => { /* folded into the channel id space */ }
                    "MCAST_FREQ" => {
                        let f: f64 = value.parse().map_err(|_| err(line_no, "bad MCAST_FREQ"))?;
                        if f <= 0.0 {
                            return Err(err(line_no, "MCAST_FREQ must be positive"));
                        }
                        cfg.heartbeat_period = (SECS as f64 / f) as Nanos;
                    }
                    "MAX_LOSS" => {
                        cfg.max_loss = value.parse().map_err(|_| err(line_no, "bad MAX_LOSS"))?
                    }
                    other => return Err(err(line_no, &format!("unknown *SYSTEM key {other}"))),
                },
                Section::Service => {
                    let svc = current_service
                        .as_mut()
                        .ok_or_else(|| err(line_no, "key before any [Service] header"))?;
                    if key == "PARTITION" {
                        svc.partitions = PartitionSet::parse(value)
                            .ok_or_else(|| err(line_no, "bad PARTITION list"))?;
                    } else {
                        svc.attrs.push((key.to_string(), value.to_string()));
                    }
                }
                Section::None => return Err(err(line_no, "key before any *SECTION")),
            }
        }
        if let Some(s) = current_service.take() {
            cfg.services.push(s);
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG7: &str = r#"
*SYSTEM
SHM_KEY = 999
MAX_TTL = 4
MCAST_ADDR = 239.255.0.2
MCAST_PORT = 10050
MCAST_FREQ = 1
MAX_LOSS = 5

*SERVICE
[HTTP]
    PARTITION = 0
    Port = 8080
[Cache]
    PARTITION = 2
"#;

    #[test]
    fn parses_the_papers_example() {
        let cfg = MembershipConfig::parse(FIG7).unwrap();
        assert_eq!(cfg.shm_key, 999);
        assert_eq!(cfg.max_ttl, 4);
        assert_eq!(cfg.heartbeat_period, SECS);
        assert_eq!(cfg.max_loss, 5);
        assert_eq!(cfg.services.len(), 2);
        assert_eq!(cfg.services[0].name, "HTTP");
        assert!(cfg.services[0].partitions.contains(0));
        assert_eq!(cfg.services[0].attrs, vec![("Port".into(), "8080".into())]);
        assert_eq!(cfg.services[1].name, "Cache");
        assert!(cfg.services[1].partitions.contains(2));
    }

    #[test]
    fn mcast_freq_scales_period() {
        let cfg = MembershipConfig::parse("*SYSTEM\nMCAST_FREQ = 2\n").unwrap();
        assert_eq!(cfg.heartbeat_period, SECS / 2);
        assert!(MembershipConfig::parse("*SYSTEM\nMCAST_FREQ = 0\n").is_err());
    }

    #[test]
    fn rejects_unknown_system_key() {
        let e = MembershipConfig::parse("*SYSTEM\nBOGUS = 1\n").unwrap_err();
        assert!(e.message.contains("BOGUS"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_stray_lines() {
        assert!(MembershipConfig::parse("KEY = 1").is_err());
        assert!(MembershipConfig::parse("*SERVICE\nPARTITION = 1").is_err());
        assert!(MembershipConfig::parse("*SYSTEM\nnot-an-assignment").is_err());
        assert!(MembershipConfig::parse("*WHAT").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let cfg = MembershipConfig::parse("# hi\n\n*SYSTEM\n# mid\nMAX_LOSS = 3\n").unwrap();
        assert_eq!(cfg.max_loss, 3);
    }

    #[test]
    fn timeout_scales_with_level() {
        let cfg = MembershipConfig::default();
        assert_eq!(cfg.timeout(0), 5 * SECS);
        assert_eq!(cfg.timeout(1), 7 * SECS + SECS / 2);
        assert_eq!(cfg.timeout(2), 10 * SECS);
        assert!(cfg.timeout(3) > cfg.timeout(2));
    }

    #[test]
    fn suspicion_window_scales_with_level() {
        let cfg = MembershipConfig::default();
        assert_eq!(cfg.suspicion(0), 2 * SECS);
        assert_eq!(cfg.suspicion(1), 3 * SECS);
        assert_eq!(cfg.suspicion(2), 4 * SECS);
        let off = MembershipConfig {
            suspicion_window: 0,
            ..MembershipConfig::default()
        };
        assert_eq!(off.suspicion(3), 0, "0 disables at every level");
    }

    #[test]
    fn channel_and_ttl_per_level() {
        let cfg = MembershipConfig::default();
        assert_eq!(cfg.channel(0), ChannelId(0));
        assert_eq!(cfg.channel(2), ChannelId(2));
        assert_eq!(cfg.ttl(0), 1);
        assert_eq!(cfg.ttl(3), 4);
        assert_eq!(cfg.top_level(), 3);
    }

    #[test]
    fn bad_partition_rejected() {
        let e = MembershipConfig::parse("*SERVICE\n[A]\nPARTITION = x-y\n").unwrap_err();
        assert!(e.message.contains("PARTITION"));
    }

    #[test]
    fn cut_detection_stretches_tombstones_to_rot_horizon() {
        let cfg = MembershipConfig::default();
        assert_eq!(cfg.effective_tombstone_ttl(), cfg.tombstone_ttl);
        let rapid = MembershipConfig {
            removal_discipline: RemovalDiscipline::CutDetection,
            ..MembershipConfig::default()
        };
        assert_eq!(
            rapid.effective_tombstone_ttl(),
            6 * rapid.anti_entropy_period,
            "back-push must outlive a partition-scale knowledge divide"
        );
        let long = MembershipConfig {
            removal_discipline: RemovalDiscipline::CutDetection,
            tombstone_ttl: 120 * SECS,
            ..MembershipConfig::default()
        };
        assert_eq!(long.effective_tombstone_ttl(), 120 * SECS);
        let no_ae = MembershipConfig {
            removal_discipline: RemovalDiscipline::CutDetection,
            anti_entropy_period: 0,
            ..MembershipConfig::default()
        };
        assert_eq!(
            no_ae.effective_tombstone_ttl(),
            no_ae.tombstone_ttl,
            "no anti-entropy → no rot horizon to outlive"
        );
    }
}
