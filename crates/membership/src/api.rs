//! The paper's §5 public API, adapted to Rust: [`MService`] mirrors the
//! C++ `MService` class (Fig. 8) and [`MClient`] the client library
//! (Fig. 9).
//!
//! ```text
//! class MService {                      // paper Fig. 8
//!     MService(const char *configuration);
//!     int run(void);
//!     int register_service(const char *name, const char *partition);
//!     int update_value(const char *key, const void *value, int size);
//!     int delete_value(const char *key);
//! };
//! ```
//!
//! The Rust shape differs in one way: `run()` does not spawn threads —
//! it hands back a sans-io [`MembershipNode`] that the caller installs
//! into a driver (the simulator or `tamp-runtime`, which owns the
//! threads). Everything else maps one-to-one.

use crate::config::{ConfigError, MembershipConfig};
use crate::node::MembershipNode;
use tamp_directory::DirectoryClient;
use tamp_wire::{NodeId, PartitionSet, ServiceDecl};

/// Builder/handle for one node's membership service.
pub struct MService {
    node: MembershipNode,
}

/// The client library: a read handle onto the local yellow pages. This is
/// a thin re-export of [`DirectoryClient`], named to match the paper.
pub type MClient = DirectoryClient;

/// Error publishing a service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError(pub String);

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service registration error: {}", self.0)
    }
}

impl std::error::Error for ServiceError {}

impl MService {
    /// Construct from a configuration-file string (the paper's Fig. 7
    /// format). "If the configuration file is not available, default
    /// values will be used": pass `None`.
    pub fn new(me: NodeId, configuration: Option<&str>) -> Result<Self, ConfigError> {
        let cfg = match configuration {
            Some(text) => MembershipConfig::parse(text)?,
            None => MembershipConfig::default(),
        };
        Ok(MService {
            node: MembershipNode::new(me, cfg),
        })
    }

    /// Construct from an already-built config (the `control()` path).
    pub fn with_config(me: NodeId, cfg: MembershipConfig) -> Self {
        MService {
            node: MembershipNode::new(me, cfg),
        }
    }

    /// Publish a service with a partition list, e.g.
    /// `register_service("Retriever", "1-3")`.
    pub fn register_service(&mut self, name: &str, partition: &str) -> Result<(), ServiceError> {
        let partitions = PartitionSet::parse(partition)
            .ok_or_else(|| ServiceError(format!("bad partition list {partition:?}")))?;
        self.node
            .register_service(ServiceDecl::new(name, partitions));
        Ok(())
    }

    /// Publish/update a service-status value that rides along with the
    /// membership multicasts.
    pub fn update_value(&mut self, key: &str, value: &str) {
        self.node.update_value(key, value);
    }

    /// Remove a published value.
    pub fn delete_value(&mut self, key: &str) {
        self.node.delete_value(key);
    }

    /// Attach a client to this node's yellow pages (the shared-memory
    /// key handshake of the paper collapses to a handle clone here).
    pub fn client(&self) -> MClient {
        self.node.directory_client()
    }

    /// Introspection probe (leaders per level, member count, …).
    pub fn probe(&self) -> crate::node::Probe {
        self.node.probe()
    }

    /// Runtime control queue: keep a clone before `run()` to call
    /// `register_service` / `update_value` / `delete_value` while the
    /// daemon runs (the paper's dynamic service-status updates).
    pub fn control_handle(&self) -> crate::node::ControlHandle {
        self.node.control_handle()
    }

    /// Finalize: hand the protocol state machine to a driver. This is the
    /// paper's `run()`, minus the thread spawning (the driver owns
    /// scheduling).
    pub fn run(self) -> MembershipNode {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_config_text() {
        let svc = MService::new(
            NodeId(3),
            Some("*SYSTEM\nMAX_LOSS = 7\n*SERVICE\n[http]\nPARTITION = 0\n"),
        )
        .unwrap();
        let node = svc.run();
        assert_eq!(node.id(), NodeId(3));
    }

    #[test]
    fn builds_with_defaults() {
        let svc = MService::new(NodeId(1), None).unwrap();
        let _ = svc.client();
    }

    #[test]
    fn bad_config_is_error() {
        assert!(MService::new(NodeId(1), Some("garbage")).is_err());
    }

    #[test]
    fn register_service_like_the_paper() {
        // The paper's example: a node in a search engine cluster calling
        // register_service("Retriever", "1-3") announces it hosts the
        // document retriever for partitions 1, 2 and 3.
        let mut svc = MService::new(NodeId(1), None).unwrap();
        svc.register_service("Retriever", "1-3").unwrap();
        assert!(svc.register_service("X", "3-1").is_err());
        svc.update_value("version", "2");
        svc.delete_value("version");
        let _node = svc.run();
    }
}
