//! # tamp-membership — the topology-adaptive hierarchical membership protocol
//!
//! This crate is the paper's primary contribution: a membership service
//! for large service clusters that automatically divides nodes into
//! multicast groups following the physical network topology, organizes
//! group leaders into a tree, and keeps a complete, accurate yellow-page
//! directory on every node with near-constant per-node network cost.
//!
//! ## How the pieces map to the paper
//!
//! | Paper §       | Here |
//! |---------------|------|
//! | §3.1.1 group formation, failure detection, leader election | [`MembershipNode`], [`group::GroupState`] |
//! | §3.1.2 bootstrap / update / timeout / loss sub-protocols   | [`MembershipNode`] handlers |
//! | §5 configuration file + `MService`/`MClient` API           | [`MembershipConfig::parse`], [`MService`], [`MClient`] |
//!
//! ## Quick start (simulated cluster)
//!
//! ```
//! use tamp_membership::{MembershipConfig, MembershipNode};
//! use tamp_netsim::{Engine, EngineConfig, SECS};
//! use tamp_topology::generators;
//! use tamp_wire::NodeId;
//!
//! // Two layer-2 networks of 5 nodes behind one router.
//! let topo = generators::star_of_segments(2, 5);
//! let mut engine = Engine::new(topo, EngineConfig::default(), 7);
//! let mut clients = Vec::new();
//! for h in engine.hosts() {
//!     let node = MembershipNode::new(NodeId(h.0), MembershipConfig::default());
//!     clients.push(node.directory_client());
//!     engine.add_actor(h, Box::new(node));
//! }
//! engine.start();
//! engine.run_until(20 * SECS);
//! // Every node has discovered all 10 members.
//! assert!(clients.iter().all(|c| c.member_count() == 10));
//! ```

pub mod config;
pub mod group;
pub mod node;

mod api;

pub use api::{MClient, MService, ServiceError};
pub use config::{ConfigError, MembershipConfig, RemovalDiscipline};
pub use node::{
    ControlHandle, MembershipNode, Probe, ProbeState, ProtocolCounters, ServiceCommand,
};
