//! The hierarchical membership protocol state machine.
//!
//! One [`MembershipNode`] runs on every cluster host. It implements, as a
//! sans-io [`Actor`], all the sub-protocols of paper §3.1:
//!
//! * **Topology-aware group formation** — join the level-0 channel with
//!   TTL 1; when elected leader of level `k`, also join level `k+1` with
//!   TTL `k+2`, up to `MAX_TTL`. Group boundaries emerge purely from TTL
//!   scoping, so the tree adapts to the physical topology with zero
//!   configuration.
//! * **Failure detection** — every member independently declares a peer
//!   dead after `MAX_LOSS` heartbeat periods of silence, with larger
//!   timeouts at higher levels.
//! * **Leader election** — sticky bully (lowest id wins, an incumbent is
//!   never deposed by a lower-id newcomer) with a leader-designated
//!   backup for fast takeover.
//! * **Bootstrap** — a joining node pulls the directory from the first
//!   leader it hears, and symmetrically offers its own (it may be a
//!   lower-level leader bringing a subtree).
//! * **Update propagation** — leaders relay joins/leaves up the tree;
//!   members relay into the groups they lead, flooding the whole cluster
//!   in one up-pass and one down-pass.
//! * **Timeout protocol** — relayed entries live exactly as long as their
//!   relayer: when a leader heard at level > 0 dies, everything it relayed
//!   is purged (how switch/partition failures are detected quickly), while
//!   the longer high-level timeouts give lower groups time to re-elect.
//! * **Message-loss handling** — updates carry sequence numbers and
//!   piggyback the previous `piggyback_window - 1` events; a gap beyond
//!   the window triggers a full-directory resynchronization poll.

use crate::config::{MembershipConfig, RemovalDiscipline};
use crate::group::{Election, GroupState};
use parking_lot::Mutex;
use std::sync::Arc;
use tamp_directory::{Applied, Provenance, SharedDirectory};
use tamp_netsim::{Actor, ChannelId, Context, PacketMeta, ProtocolEvent};

use tamp_wire::piggyback::UpdateLog;
use tamp_wire::seqnum::SeqTracker;
use tamp_wire::{
    DigestEntry, DigestMsg, DirectoryExchange, ElectionMsg, Heartbeat, MemberEvent, Message,
    NodeId, NodeRecord, RelayedRecord, SyncRequest, SyncResponse, UpdateMsg,
};

/// The header fields of a heartbeat, copied out of either an owned
/// [`Heartbeat`] or a borrowed [`tamp_wire::HeartbeatView`] — the part
/// of the message the handler always needs, independent of whether the
/// sender's record ever gets materialized.
#[derive(Clone, Copy)]
struct HeartbeatHeader {
    from: NodeId,
    level: u8,
    is_leader: bool,
    backup: Option<NodeId>,
    latest_update_seq: u64,
    rec_node: NodeId,
    rec_incarnation: u64,
}

/// Timer tokens: kind in the low byte, group level in the next byte.
const T_HEARTBEAT: u64 = 1;
const T_SWEEP: u64 = 2;
const T_ELECTION: u64 = 3;
const T_DIGEST: u64 = 4;

fn election_token(level: u8) -> u64 {
    T_ELECTION | ((level as u64) << 8)
}

fn token_kind(token: u64) -> (u64, u8) {
    (token & 0xff, ((token >> 8) & 0xff) as u8)
}

/// Shared introspection snapshot, updated by the node as it runs. Lets
/// tests and the experiment harness observe protocol state without
/// reaching into the actor.
#[derive(Debug, Default, Clone)]
pub struct ProbeState {
    /// `leaders[ℓ]` = believed leader of our level-ℓ group (None when
    /// the level is inactive or leaderless).
    pub leaders: Vec<Option<NodeId>>,
    /// Levels this node currently participates in.
    pub active_levels: Vec<u8>,
    pub incarnation: u64,
    /// Live entries in the local directory.
    pub member_count: usize,
    /// Lifetime protocol-activity counters.
    pub counters: ProtocolCounters,
}

/// How often each sub-protocol has fired on this node — cheap
/// observability for operators and tests ("is this node electing in a
/// loop?", "how many full syncs did that outage cost?").
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolCounters {
    /// Election candidacies we announced.
    pub elections_started: u64,
    /// Times we claimed leadership (Coordinator sent).
    pub leaderships_claimed: u64,
    /// Sync polls we sent (loss-repair round trips).
    pub sync_polls_sent: u64,
    /// Sync requests we answered with a full directory image.
    pub full_syncs_served: u64,
    /// Sync requests we answered cheaply from the update-log window.
    pub backfills_served: u64,
    /// Anti-entropy digests we multicast.
    pub digests_sent: u64,
    /// Update messages we originated or re-originated.
    pub updates_sent: u64,
    /// Peers we declared dead.
    pub deaths_declared: u64,
    /// Suspicions we raised from our own failure detector (plus advisory
    /// suspicions adopted from relayed `Suspect` events).
    pub suspicions_raised: u64,
    /// Suspicions cancelled by proof of life before confirmation.
    pub suspicions_refuted: u64,
    /// Suspicions that survived the window and became removals.
    pub suspicions_confirmed: u64,
    /// Dead-leader subtrees we quarantined instead of purging.
    pub subtrees_quarantined: u64,
    /// Quarantines lifted because a successor re-vouched (or the leader
    /// itself returned) before the deadline.
    pub quarantines_lifted: u64,
    /// Entries purged at quarantine expiry (no successor re-attached).
    pub quarantine_purged: u64,
    /// Cut-detection mode: distinct (subject, reporter) votes recorded.
    pub cut_reports: u64,
    /// Cut-detection mode: batched view changes applied.
    pub cut_batches: u64,
}

/// Cloneable handle to a node's [`ProbeState`].
pub type Probe = Arc<Mutex<ProbeState>>;

/// One active suspicion held by this node (docs/ROBUSTNESS.md): the
/// subject timed out (or a `Suspect` event named it) but has not yet been
/// removed. A refutation — proof of life at `incarnation` or higher —
/// cancels it; only an unrefuted suspicion that survives its window is
/// confirmed as a `Leave`.
#[derive(Debug, Clone, Copy)]
struct Suspicion {
    /// The incarnation under suspicion. Evidence at a lower incarnation
    /// neither confirms nor refutes.
    incarnation: u64,
    /// Group level whose detector raised it (scales the window and picks
    /// the relay set on confirmation).
    level: u8,
    since: u64,
    /// Confirmation window (already flap-scaled; the loss-degradation
    /// stretch is applied at check time so it tracks *current* distress).
    window: u64,
    /// Adopted from a relayed `Suspect` event rather than our own
    /// detector: we track it for refutation bookkeeping but never confirm
    /// it ourselves — confirmation is the origin group's call.
    advisory: bool,
}

/// Aggregated failure reports for one subject in cut-detection mode
/// ([`RemovalDiscipline::CutDetection`]): who has voted the subject dead,
/// and at which incarnation. Nothing is removed until the whole report
/// pattern is stable — see [`MembershipNode::process_cuts`].
#[derive(Debug, Clone)]
struct CutState {
    /// Incarnation the reports accuse. Older-incarnation votes are
    /// discarded; a higher-incarnation vote resets the count.
    incarnation: u64,
    /// Detector level of our own observation, or the arrival level of
    /// the first Alert — picks the relay set and the subtree handling
    /// when the cut is confirmed.
    level: u8,
    /// Distinct reporters, each with the time its vote was last
    /// asserted (votes expire after `cut_report_ttl`).
    reporters: std::collections::BTreeMap<NodeId, u64>,
}

/// A dead relayer's subtree held in escrow: entries it vouched for stay
/// in the directory until `deadline`, waiting for a successor leader to
/// re-vouch (provenance re-stamp). Only what is *still* attributed to the
/// dead relayer at the deadline is purged.
#[derive(Debug, Clone)]
struct Quarantine {
    deadline: u64,
    /// Subtree snapshot at quarantine time (for refutation bookkeeping
    /// when the quarantine lifts).
    members: Vec<NodeId>,
}

/// A deferred mutation of this node's published record, applied on the
/// next sweep — how application code calls the paper's
/// `register_service` / `update_value` / `delete_value` *while the
/// daemon is running* (the node itself is owned by the driver).
#[derive(Debug, Clone)]
pub enum ServiceCommand {
    Register(tamp_wire::ServiceDecl),
    Unregister(String),
    UpdateValue(String, String),
    DeleteValue(String),
    /// Graceful departure: announce our own leave to every group before
    /// going quiet, so peers remove us immediately instead of waiting
    /// out the failure timeout (an extension — the paper handles
    /// departures by timeout only).
    GracefulLeave,
}

/// Cloneable command queue attached to a running node.
pub type ControlHandle = Arc<Mutex<Vec<ServiceCommand>>>;

/// One cluster node running the hierarchical membership protocol.
pub struct MembershipNode {
    cfg: MembershipConfig,
    me: NodeId,
    incarnation: u64,
    crashed: bool,
    record: NodeRecord,
    directory: SharedDirectory,
    /// Events this node originated, with its own sequence numbers.
    log: UpdateLog,
    /// Highest applied update seq per origin.
    seqs: SeqTracker<NodeId>,
    /// `groups[ℓ]` = state of our level-ℓ group, if active.
    groups: Vec<Option<GroupState>>,
    /// Last time we sync-polled each peer (suppresses duplicate polls
    /// while a response is in flight).
    sync_polls: std::collections::HashMap<NodeId, u64>,
    /// Active suspicions (subject → state). See [`Suspicion`].
    suspicions: std::collections::HashMap<NodeId, Suspicion>,
    /// Recent refutations: subject → (refuted-at incarnation, when). A
    /// relayed `Leave` at an incarnation we refuted this recently loses
    /// ("refutation always wins") — we answer it with a `Refute` instead
    /// of applying it.
    refuted: std::collections::HashMap<NodeId, (u64, u64)>,
    /// Flap damping à la Rapid: subject → (instability score, last bump).
    /// The score decays with `cfg.flap_half_life` and stretches the
    /// subject's next suspicion window.
    flap: std::collections::HashMap<NodeId, (f64, u64)>,
    /// Subtree quarantines keyed by the dead relayer.
    quarantine: std::collections::HashMap<NodeId, Quarantine>,
    /// Cut-detection vote aggregator, keyed by subject (BTreeMap so the
    /// batched view change executes in a pool-width-independent order).
    cuts: std::collections::BTreeMap<NodeId, CutState>,
    /// Last time the report pattern gained a vote; batched view changes
    /// wait out `cut_batch_delay` of quiescence after this instant.
    cut_last_change: u64,
    /// Distress latch: the loss-degradation stretch stays engaged until
    /// this instant even if the raw signal flickers off (see
    /// [`MembershipNode::distress_stretch`]).
    distress_until: u64,
    /// Next instant the catch-all directory expiry needs to scan. The
    /// scan is O(members); re-armed from the earliest surviving deadline
    /// (and forced by group-coverage changes) instead of running every
    /// sweep.
    next_catchall: u64,
    /// Deferred record mutations from application code.
    control: ControlHandle,
    counters: ProtocolCounters,
    probe: Probe,
}

impl MembershipNode {
    pub fn new(me: NodeId, cfg: MembershipConfig) -> Self {
        let levels = cfg.top_level() as usize + 1;
        let mut node = MembershipNode {
            record: NodeRecord::new(me, 0),
            me,
            incarnation: 0,
            crashed: false,
            directory: SharedDirectory::new(),
            log: UpdateLog::with_max_age(cfg.piggyback_window, cfg.effective_tombstone_ttl() / 2),
            seqs: SeqTracker::new(),
            groups: (0..levels).map(|_| None).collect(),
            sync_polls: std::collections::HashMap::new(),
            suspicions: std::collections::HashMap::new(),
            refuted: std::collections::HashMap::new(),
            flap: std::collections::HashMap::new(),
            quarantine: std::collections::HashMap::new(),
            cuts: std::collections::BTreeMap::new(),
            cut_last_change: 0,
            distress_until: 0,
            next_catchall: 0,
            control: Arc::new(Mutex::new(Vec::new())),
            counters: ProtocolCounters::default(),
            probe: Arc::new(Mutex::new(ProbeState::default())),
            cfg,
        };
        node.rebuild_record();
        node
    }

    /// Read-only handle to this node's yellow pages (the paper's
    /// `MClient` attach point). Valid before and after the node is boxed
    /// into a driver.
    pub fn directory_client(&self) -> tamp_directory::DirectoryClient {
        self.directory.client()
    }

    /// Introspection handle for tests/harness.
    pub fn probe(&self) -> Probe {
        Arc::clone(&self.probe)
    }

    /// Resolve `(service, partition)` through this node's live view:
    /// the node ids currently believed to host that service partition.
    /// The view-resolution entry point used by request routers
    /// (gateways, the `tamp-load` generator) — equivalent to
    /// `directory_client().resolve(...)` without constructing a client.
    pub fn resolve_service(&self, service: &str, partition: u16) -> Vec<NodeId> {
        self.directory.client().resolve(service, partition)
    }

    /// Command queue for mutating this node's published services and
    /// attributes at runtime (applied on the next sweep, announced on
    /// the heartbeat that follows).
    pub fn control_handle(&self) -> ControlHandle {
        Arc::clone(&self.control)
    }

    /// The node's identity.
    pub fn id(&self) -> NodeId {
        self.me
    }

    fn make_record(&self, incarnation: u64) -> NodeRecord {
        let mut r = NodeRecord::new(self.me, incarnation);
        r.services = self.cfg.services.clone();
        r.attrs = self.cfg.attrs.clone();
        if self.cfg.pad_heartbeat_to > 0 {
            r.pad_to_encoded_size(self.cfg.pad_heartbeat_to);
        }
        r
    }

    fn rebuild_record(&mut self) {
        self.record = self.make_record(self.incarnation);
    }

    /// Preview the record this node will announce on its first
    /// `on_start` (including the incarnation bump). A warm-starting
    /// harness captures every node's boot record before the run and
    /// [`preload`](MembershipNode::preload)s them into the others, so
    /// the cluster boots already converged.
    pub fn boot_record(&self) -> NodeRecord {
        self.make_record(self.incarnation + 1)
    }

    /// Pre-seed this node's directory before the simulation starts (the
    /// warm-start path; pair with [`MembershipConfig::warm_start`]).
    /// Records are inserted as-is with the given provenance and a
    /// last-refresh of t=0; entries covered by a group are kept alive by
    /// heartbeats, relayed entries by their relayer, exactly as if the
    /// cluster had converged the slow way.
    pub fn preload(
        &mut self,
        records: impl IntoIterator<Item = (NodeRecord, tamp_directory::Provenance)>,
    ) {
        self.directory.update(|d| {
            let mut changed = false;
            for (r, p) in records {
                if r.node == self.me {
                    continue; // `on_start` installs the Local self-entry
                }
                changed |= d.apply_join(r, p, 0).changed();
            }
            (changed, ())
        });
    }

    /// Bulk variant of [`preload`](MembershipNode::preload): replace the
    /// directory wholesale with a pre-built template. At 10k nodes the
    /// harness builds one template per segment and clones it into every
    /// member — O(clone) instead of 10k individual merges per node.
    ///
    /// A template self-entry is dropped, like [`Self::preload`] skips it:
    /// `on_start` must install the `Local` self-entry itself. Keeping a
    /// `Direct` one would be a time bomb — `on_start`'s equal-incarnation
    /// re-apply does not change provenance, and a `Direct` self-entry is
    /// covered by no group, so the catch-all expiry would remove it at
    /// `2·timeout(top)` and cascade to everything stamped
    /// `Relayed(self)` (on a leaf leader: the entire remote directory).
    pub fn preload_directory(&mut self, template: &tamp_directory::Directory) {
        let me = self.me;
        self.directory.update(|d| {
            *d = template.clone();
            d.remove(me);
            (true, ())
        });
    }

    /// Publish or update a service at runtime (the paper's
    /// `register_service`). Takes effect on the next heartbeat; peers
    /// pick up the change as a same-incarnation content update.
    pub fn register_service(&mut self, svc: tamp_wire::ServiceDecl) {
        self.cfg.services.retain(|s| s.name != svc.name);
        self.cfg.services.push(svc);
        self.rebuild_record();
    }

    /// Publish a key-value attribute (the paper's `update_value`).
    pub fn update_value(&mut self, key: &str, value: &str) {
        self.cfg.attrs.retain(|(k, _)| k != key);
        self.cfg.attrs.push((key.to_string(), value.to_string()));
        self.rebuild_record();
    }

    /// Remove a key (the paper's `delete_value`).
    pub fn delete_value(&mut self, key: &str) {
        self.cfg.attrs.retain(|(k, _)| k != key);
        self.rebuild_record();
    }

    // ----------------------------------------------------------- helpers

    fn level_of_channel(&self, ch: ChannelId) -> Option<u8> {
        let base = self.cfg.base_channel.0;
        if ch.0 < base {
            return None;
        }
        let level = (ch.0 - base) as u8;
        (level <= self.cfg.top_level()).then_some(level)
    }

    fn active_levels(&self) -> Vec<u8> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.is_some())
            .map(|(l, _)| l as u8)
            .collect()
    }

    fn am_leader(&self, level: u8) -> bool {
        self.groups[level as usize]
            .as_ref()
            .is_some_and(|g| g.leader == Some(self.me))
    }

    fn update_probe(&self) {
        let member_count = self.directory.read(|d| d.len());
        let mut p = self.probe.lock();
        // Reuse the probe's buffers: this runs every sweep on every node,
        // and fresh allocations here show up at 10k-node scale.
        p.leaders.clear();
        p.leaders.extend(
            self.groups
                .iter()
                .map(|g| g.as_ref().and_then(|g| g.leader)),
        );
        p.active_levels.clear();
        p.active_levels.extend(
            self.groups
                .iter()
                .enumerate()
                .filter(|(_, g)| g.is_some())
                .map(|(l, _)| l as u8),
        );
        p.incarnation = self.incarnation;
        p.member_count = member_count;
        p.counters = self.counters;
    }

    /// Apply a record heard *directly* (heartbeat from the node itself);
    /// returns whether the directory changed and whether the node is
    /// newly known. Routes through the directory's lazy-materialization
    /// join so borrowed wire views skip decoding on the dominant
    /// same-incarnation refresh path.
    fn apply_direct_with(
        &mut self,
        ctx: &mut Context,
        node: NodeId,
        incarnation: u64,
        make_record: &impl Fn() -> NodeRecord,
        same: &impl Fn(&NodeRecord) -> bool,
    ) -> (bool, bool) {
        let now = ctx.now();
        let (was_known, applied) = self.directory.update(|d| {
            let was = d.contains(node);
            let applied = d.apply_join_with(
                node,
                incarnation,
                Provenance::Direct,
                now,
                make_record,
                same,
            );
            (applied.changed(), (was, applied))
        });
        if applied == Applied::Changed && !was_known {
            ctx.observe_added(node);
        }
        (applied == Applied::Changed, !was_known)
    }

    /// Groups to relay an event into, given the level it arrived on
    /// (`arrival`): every group we lead, plus every higher-level group we
    /// participate in (upward path). `arrival` itself is excluded.
    fn relay_levels(&self, arrival: u8) -> Vec<u8> {
        self.active_levels()
            .into_iter()
            .filter(|&l| l != arrival && (self.am_leader(l) || l > arrival))
            .collect()
    }

    /// Relay set for information that arrived point-to-point (directory
    /// exchanges, sync responses) and therefore has no arrival group:
    /// every group we lead plus every higher-level group we sit in.
    fn relay_levels_all(&self) -> Vec<u8> {
        self.active_levels()
            .into_iter()
            .filter(|&l| self.am_leader(l) || l > 0)
            .collect()
    }

    /// Poll `peer` for a full directory image, at most once per two
    /// heartbeat periods (a response is probably already in flight).
    fn maybe_sync_poll(&mut self, ctx: &mut Context, peer: NodeId) {
        let now = ctx.now();
        let recently = self
            .sync_polls
            .get(&peer)
            .is_some_and(|&t| now.saturating_sub(t) < 2 * self.cfg.heartbeat_period);
        if recently {
            return;
        }
        self.sync_polls.insert(peer, now);
        self.counters.sync_polls_sent += 1;
        ctx.count("membership", "sync_polls_sent", 1);
        ctx.emit(ProtocolEvent::SyncPoll { peer: peer.0 });
        let since_seq = self.seqs.last_applied(peer).unwrap_or(0);
        ctx.send_unicast(
            peer,
            Message::SyncRequest(SyncRequest {
                from: self.me,
                since_seq,
            }),
        );
    }

    // ------------------------------------------- suspicion & quarantine

    /// Current flap-damping multiplier for `node`: `1 + min(score, cap)`,
    /// where the instability score decays exponentially with
    /// `flap_half_life` since its last bump.
    fn flap_multiplier(&self, node: NodeId, now: u64) -> f64 {
        let hl = self.cfg.flap_half_life;
        if hl == 0 {
            return 1.0;
        }
        match self.flap.get(&node) {
            None => 1.0,
            Some(&(score, at)) => {
                let decayed = score * 0.5f64.powf(now.saturating_sub(at) as f64 / hl as f64);
                1.0 + decayed.min(self.cfg.flap_score_cap)
            }
        }
    }

    /// One more refuted suspicion of `node`: it flapped. Future suspicion
    /// windows for it stretch accordingly.
    fn bump_flap(&mut self, node: NodeId, now: u64) {
        let hl = self.cfg.flap_half_life;
        if hl == 0 {
            return;
        }
        let e = self.flap.entry(node).or_insert((0.0, now));
        let decayed = e.0 * 0.5f64.powf(now.saturating_sub(e.1) as f64 / hl as f64);
        *e = (decayed + 1.0, now);
    }

    /// Graceful degradation under measured heavy loss: when at least half
    /// of a group's peers look late — by the EWMA inter-arrival estimate
    /// (the A7 detector signal) *or* by their current heartbeat silence,
    /// whichever is worse — beyond `degrade_stretch_threshold ×
    /// heartbeat_period`, the *network* is in distress, not the peers: a
    /// real crash makes exactly one peer late, a loss burst makes them
    /// all late. The current-silence term matters because the EWMA only
    /// updates on arrival: a burst that silences the whole group leaves
    /// the estimate frozen at its healthy value right when the signal is
    /// needed most. Timeouts and suspicion windows widen by
    /// `degrade_max_stretch` while the distress lasts.
    ///
    /// The signal is judged per group but applied host-wide: groups with
    /// fewer than three peers (typically the higher leader levels) carry
    /// no usable correlation signal of their own, yet share the same
    /// network as the well-populated level-0 group, so any distressed
    /// group stretches every level's windows.
    fn raw_distress(&self, now: u64) -> bool {
        let th = self.cfg.degrade_stretch_threshold;
        if th <= 0.0 {
            return false;
        }
        let period = self.cfg.heartbeat_period as f64;
        self.groups.iter().flatten().any(|g| {
            if g.peers.len() < 3 {
                return false;
            }
            let late = g
                .peers
                .values()
                .filter(|p| {
                    let silence = if p.last_heartbeat > 0 {
                        now.saturating_sub(p.last_heartbeat) as f64
                    } else {
                        0.0
                    };
                    p.ewma_interval.max(silence) > th * period
                })
                .count();
            late * 2 >= g.peers.len()
        })
    }

    /// Latched view of [`MembershipNode::raw_distress`]: the current
    /// stretch factor for timeouts and suspicion windows. The raw signal
    /// has a duty cycle under partial loss (heartbeats that do get
    /// through reset peers' silence), and the confirmation check runs
    /// every sweep — without a latch, the first sweep that catches the
    /// signal off would confirm a suspicion the stretched window should
    /// still be holding open. Each raw-positive reading arms the latch
    /// for three heartbeat periods.
    fn distress_stretch(&mut self, now: u64) -> f64 {
        if self.raw_distress(now) {
            self.distress_until = now + 3 * self.cfg.heartbeat_period;
        }
        if now < self.distress_until {
            self.cfg.degrade_max_stretch.max(1.0)
        } else {
            1.0
        }
    }

    /// Did we refute a suspicion of `node` at incarnation ≥ `inc`
    /// recently enough that a silence-based `Leave` at `inc` must lose?
    fn recently_refuted(&self, node: NodeId, inc: u64, now: u64) -> bool {
        let hold = self.cfg.timeout(self.cfg.top_level());
        self.refuted
            .get(&node)
            .is_some_and(|&(ri, at)| ri >= inc && now.saturating_sub(at) <= hold)
    }

    /// Resolve an active suspicion of `node` as refuted by proof of life
    /// at `inc`. Bumps the flap score for suspicions our own detector
    /// raised and returns whether there was a suspicion to clear.
    ///
    /// The refutation is recorded in the `refuted` map — so later stale
    /// `Leave`s at that incarnation lose — only when the proof is
    /// *fresh*: direct liveness, an explicit `Refute` event, or a
    /// strictly newer incarnation. Same-incarnation vouching (a replayed
    /// `Join` out of a peer's backfill log) may clear an advisory
    /// suspicion, but it is history, not proof of life: arming the
    /// Leave-blocker on it would let a stale join replay veto the
    /// genuine same-incarnation `Leave` travelling right behind it in
    /// the same backfill, leaving the dead node in the directory past
    /// every tombstone and resurrecting it cluster-wide.
    ///
    /// Cut-detection vote books follow the same rule: only fresh proof
    /// or a newer incarnation clears them. Every directory in the
    /// cluster still carries a just-died node's record at its last
    /// incarnation, so the Alert flood's own echo (sync-poll snapshots,
    /// piggyback backfill) re-vouches the subject within milliseconds
    /// of the votes landing — letting that wipe the aggregation would
    /// race every batch against its own dissemination. Genuinely alive
    /// subjects are cleared by the direct-liveness sweep, and votes
    /// nobody re-asserts expire via `cut_report_ttl`.
    fn refute_suspicion(&mut self, ctx: &mut Context, node: NodeId, inc: u64, fresh: bool) -> bool {
        let Some(s) = self.suspicions.get(&node).copied() else {
            return false;
        };
        if inc < s.incarnation {
            return false; // stale proof: an older incarnation's liveness
        }
        self.suspicions.remove(&node);
        if fresh || inc > s.incarnation {
            self.cuts.remove(&node);
        }
        self.counters.suspicions_refuted += 1;
        ctx.count("membership", "suspicions_refuted", 1);
        ctx.emit(ProtocolEvent::SuspicionRefuted { subject: node.0 });
        if fresh || inc > s.incarnation {
            self.refuted.insert(node, (inc, ctx.now()));
        }
        if !s.advisory {
            self.bump_flap(node, ctx.now());
        }
        ctx.observe_refuted(node);
        true
    }

    /// Our own failure detector timed out `peer` at `level`: enter the
    /// refutable `Suspect` state instead of removing (the tentpole of the
    /// suspicion extension). With `suspicion_window = 0` this degrades to
    /// the paper's immediate removal.
    fn raise_suspicion(&mut self, ctx: &mut Context, peer: NodeId, level: u8) {
        if self.suspicions.get(&peer).is_some_and(|s| !s.advisory) {
            return; // already suspected by our own detector
        }
        let Some(inc) = self
            .directory
            .read(|d| d.get(peer).map(|e| e.record.incarnation))
        else {
            // Nothing to suspect: the entry is already gone.
            self.seqs.forget(peer);
            return;
        };
        let now = ctx.now();
        let window = (self.cfg.suspicion(level) as f64 * self.flap_multiplier(peer, now)) as u64;
        self.suspicions.insert(
            peer,
            Suspicion {
                incarnation: inc,
                level,
                since: now,
                window,
                advisory: false,
            },
        );
        self.counters.suspicions_raised += 1;
        ctx.count("membership", "suspicions_raised", 1);
        ctx.emit(ProtocolEvent::SuspicionArmed { subject: peer.0 });
        ctx.observe_suspected(peer);
        let levels = self.relay_levels(level);
        self.relay_events(ctx, vec![MemberEvent::Suspect(peer, inc)], levels);
    }

    /// Cut-detection mode: our own failure detector timed out `peer`.
    /// We do not arm a removal of our own — we record and multicast one
    /// `Alert` vote (into the detecting group itself, so co-observers
    /// can aggregate it, plus the usual upward/led relay set) and leave
    /// the removal to [`MembershipNode::process_cuts`].
    fn report_cut(&mut self, ctx: &mut Context, peer: NodeId, level: u8) {
        let Some(inc) = self
            .directory
            .read(|d| d.get(peer).map(|e| e.record.incarnation))
        else {
            // Nothing to report: the entry is already gone.
            self.seqs.forget(peer);
            return;
        };
        let now = ctx.now();
        if self.record_cut_report(ctx, peer, inc, self.me, level, now) {
            let mut levels = self.relay_levels(level);
            levels.push(level);
            self.relay_events(
                ctx,
                vec![MemberEvent::Alert {
                    subject: peer,
                    incarnation: inc,
                    reporter: self.me,
                }],
                levels,
            );
        }
    }

    /// Record one cut-detection vote. Returns whether it was *new* —
    /// a (subject, reporter) pair not already on the books at this
    /// incarnation — which is what makes the corresponding `Alert`
    /// worth relaying (and what resets the batch-quiescence clock). A
    /// first vote against a subject also arms an advisory suspicion, so
    /// the strict oracle's suspect-before-remove ordering holds and the
    /// existing refutation machinery clears cut state on proof of life.
    fn record_cut_report(
        &mut self,
        ctx: &mut Context,
        subject: NodeId,
        inc: u64,
        reporter: NodeId,
        level: u8,
        now: u64,
    ) -> bool {
        let e = self.cuts.entry(subject).or_insert_with(|| CutState {
            incarnation: inc,
            level,
            reporters: std::collections::BTreeMap::new(),
        });
        if inc < e.incarnation {
            return false; // stale vote against an earlier life
        }
        if inc > e.incarnation {
            e.incarnation = inc;
            e.level = level;
            e.reporters.clear();
        }
        if e.reporters.insert(reporter, now).is_some() {
            return false; // refreshed an existing vote: no pattern change
        }
        self.cut_last_change = now;
        self.counters.cut_reports += 1;
        ctx.count("membership", "cut_reports", 1);
        let already = self
            .suspicions
            .get(&subject)
            .is_some_and(|s| s.incarnation >= inc);
        if !already {
            self.suspicions.insert(
                subject,
                Suspicion {
                    incarnation: inc,
                    level,
                    since: now,
                    window: 0,
                    advisory: true,
                },
            );
            self.counters.suspicions_raised += 1;
            ctx.count("membership", "suspicions_raised", 1);
            ctx.emit(ProtocolEvent::SuspicionArmed { subject: subject.0 });
            ctx.observe_suspected(subject);
        }
        true
    }

    /// Sweep-time cut-detection processing: refute subjects we can
    /// still hear, keep our own votes asserted, expire votes nobody
    /// re-asserts, and apply the batched view change once the report
    /// pattern is *stable* — every reported subject either reached the
    /// (observer-clamped) high watermark or fell below the low
    /// watermark, and no new vote has landed for `cut_batch_delay`.
    /// A lone reporter (e.g. the near side of a one-way gray cut) stays
    /// below the low watermark forever: it blocks nothing and removes
    /// nothing, which is the almost-everywhere-agreement safety story.
    fn process_cuts(&mut self, ctx: &mut Context) {
        if self.cuts.is_empty() {
            return;
        }
        let now = ctx.now();
        let ttl = self.cfg.cut_report_ttl;

        // Fresh direct liveness is counter-evidence, not a vote: clear
        // the subject's reports and refute on its behalf.
        let alive: Vec<(NodeId, u64)> = self
            .cuts
            .iter()
            .filter(|(n, _)| {
                self.groups.iter().flatten().any(|g| {
                    g.peers.get(n).is_some_and(|p| {
                        now.saturating_sub(p.last_heard) <= 2 * self.cfg.heartbeat_period
                    })
                })
            })
            .map(|(&n, s)| (n, s.incarnation))
            .collect();
        for (n, inc) in alive {
            self.cuts.remove(&n);
            if self.refute_suspicion(ctx, n, inc, true) {
                if let Some(rec) = self.directory.read(|d| d.get(n).map(|e| e.record.clone())) {
                    let levels = self.relay_levels_all();
                    self.relay_events(ctx, vec![MemberEvent::Refute(rec)], levels);
                }
            }
        }

        // Our own vote stays asserted while the silence lasts (re-flood
        // at half the TTL, so remote aggregators do not time it out
        // under loss); votes nobody re-asserts expire. A subject whose
        // last vote expires leaves the books without any removal.
        let mut reflood: Vec<(NodeId, u64, u8)> = Vec::new();
        for (&n, s) in self.cuts.iter_mut() {
            if let Some(t) = s.reporters.get_mut(&self.me) {
                if now.saturating_sub(*t) >= ttl / 2 {
                    *t = now;
                    reflood.push((n, s.incarnation, s.level));
                }
            }
            s.reporters.retain(|_, &mut t| now.saturating_sub(t) < ttl);
        }
        self.cuts.retain(|_, s| !s.reporters.is_empty());
        for (n, inc, level) in reflood {
            let mut levels = self.relay_levels(level);
            levels.push(level);
            self.relay_events(
                ctx,
                vec![MemberEvent::Alert {
                    subject: n,
                    incarnation: inc,
                    reporter: self.me,
                }],
                levels,
            );
        }

        if self.cfg.removal_discipline != RemovalDiscipline::CutDetection {
            return; // aggregation hygiene only; removal stays timeout-driven
        }
        if now.saturating_sub(self.cut_last_change) < self.cfg.cut_batch_delay {
            return; // reports still arriving: wait for quiescence
        }
        let mut ready: Vec<(NodeId, u8)> = Vec::new();
        for (&n, s) in self.cuts.iter() {
            // Small groups cannot muster H distinct observers: clamp to
            // the live observer count at the subject's level — but never
            // below the low watermark, so a single observer (a leader
            // watching a remote leader across a gray cut) can never
            // confirm a cut alone.
            let observers = 1 + self
                .groups
                .get(s.level as usize)
                .and_then(|g| g.as_ref())
                .map_or(0, |g| g.peers.len());
            let h = self
                .cfg
                .cut_high_watermark
                .min(observers.max(self.cfg.cut_low_watermark));
            let votes = s.reporters.len();
            if votes >= h {
                ready.push((n, s.level));
            } else if votes >= self.cfg.cut_low_watermark {
                return; // unstable: almost-everywhere agreement pending
            }
        }
        if ready.is_empty() {
            return;
        }
        // The stable cut executes as one batched view change, in
        // NodeId order (BTreeMap) for pool-width determinism.
        self.counters.cut_batches += 1;
        ctx.count("membership", "cut_batches", 1);
        for (n, level) in ready {
            self.cuts.remove(&n);
            self.suspicions.remove(&n);
            self.counters.suspicions_confirmed += 1;
            ctx.count("membership", "suspicions_confirmed", 1);
            ctx.emit(ProtocolEvent::SuspicionConfirmed { subject: n.0 });
            self.declare_peer_dead(ctx, n, level);
        }
    }

    /// Subtree quarantine: instead of purging everything a dead relayer
    /// vouched for (the paper's timeout protocol), mark the subtree
    /// suspect-as-a-unit and hold it until `quarantine_window` passes. A
    /// successor leader that re-attaches re-stamps the entries' provenance
    /// (directory `apply_join`) and thereby lifts the quarantine; only
    /// entries still attributed to the dead relayer at the deadline are
    /// purged.
    fn quarantine_subtree(&mut self, ctx: &mut Context, relayer: NodeId) {
        let members: Vec<(NodeId, u64)> = self.directory.read(|d| {
            d.entries()
                .filter(|e| e.provenance == Provenance::Relayed(relayer))
                .map(|e| (e.record.node, e.record.incarnation))
                .collect()
        });
        if members.is_empty() {
            return;
        }
        let now = ctx.now();
        self.counters.subtrees_quarantined += 1;
        ctx.count("membership", "subtrees_quarantined", 1);
        let mut events = Vec::with_capacity(members.len());
        for &(m, inc) in &members {
            ctx.observe_suspected(m);
            events.push(MemberEvent::Suspect(m, inc));
        }
        self.quarantine.insert(
            relayer,
            Quarantine {
                deadline: now + self.cfg.quarantine_window,
                members: members.iter().map(|&(m, _)| m).collect(),
            },
        );
        // Tell the rest of the tree the subtree is in doubt, so observers
        // that later apply our purge's `Leave`s saw the suspicion first.
        let levels = self.relay_levels_all();
        self.relay_events(ctx, events, levels);
    }

    /// Sweep-time quarantine processing: lift quarantines whose relayer
    /// returned, purge those whose deadline passed.
    fn process_quarantines(&mut self, ctx: &mut Context) {
        if self.quarantine.is_empty() {
            return;
        }
        let now = ctx.now();
        // Pin the processing order: hash-map iteration order is seeded
        // per thread, and lift/purge emit messages whose order must not
        // depend on which thread runs the simulation.
        let mut relayers: Vec<NodeId> = self.quarantine.keys().copied().collect();
        relayers.sort_unstable();
        for relayer in relayers {
            let back = self.directory.read(|d| d.contains(relayer));
            if back {
                // The "dead" relayer is alive again (false positive that
                // refuted, or a fast restart): the subtree was never
                // orphaned.
                let q = self.quarantine.remove(&relayer).unwrap();
                self.counters.quarantines_lifted += 1;
                ctx.count("membership", "quarantines_lifted", 1);
                for m in q.members {
                    if self.directory.read(|d| d.contains(m)) {
                        ctx.observe_refuted(m);
                    }
                }
                continue;
            }
            let q = self.quarantine.get(&relayer).unwrap();
            if now < q.deadline {
                continue;
            }
            let q = self.quarantine.remove(&relayer).unwrap();
            // Whatever a successor re-vouched for is no longer attributed
            // to the dead relayer; the rest is orphaned for real.
            let purged = self.directory.update(|d| {
                let v = d.purge_relayed_by(relayer);
                (!v.is_empty(), v)
            });
            let purged_ids: std::collections::HashSet<NodeId> =
                purged.iter().map(|r| r.node).collect();
            let mut events = Vec::new();
            for r in &purged {
                self.counters.quarantine_purged += 1;
                ctx.count("membership", "quarantine_purged", 1);
                ctx.observe_removed(r.node);
                events.push(MemberEvent::Leave(r.node, r.incarnation));
                self.seqs.forget(r.node);
                self.suspicions.remove(&r.node);
            }
            for m in q.members {
                if !purged_ids.contains(&m) && self.directory.read(|d| d.contains(m)) {
                    ctx.observe_refuted(m); // survived: somebody re-vouched
                }
            }
            if !events.is_empty() {
                let levels = self.relay_levels_all();
                self.relay_events(ctx, events, levels);
            }
        }
    }

    /// Sweep-time suspicion processing: confirm unrefuted suspicions
    /// whose (distress-stretched) window has passed; drop bookkeeping
    /// whose subject is gone.
    fn process_suspicions(&mut self, ctx: &mut Context) {
        if self.suspicions.is_empty() && self.refuted.is_empty() {
            return;
        }
        let now = ctx.now();
        // Refutation memory ages out after the longest detection span.
        let hold = self.cfg.timeout(self.cfg.top_level());
        self.refuted
            .retain(|_, &mut (_, at)| now.saturating_sub(at) <= hold);

        let stretch = self.distress_stretch(now);
        // Pin the resolution order: hash-map iteration order is seeded
        // per thread, and confirm/refute emit messages whose order must
        // not depend on which thread runs the simulation.
        let mut due: Vec<(NodeId, Suspicion)> = self
            .suspicions
            .iter()
            .filter(|(_, s)| !s.advisory)
            .filter(|(_, s)| now.saturating_sub(s.since) >= (s.window as f64 * stretch) as u64)
            .map(|(&n, &s)| (n, s))
            .collect();
        due.sort_unstable_by_key(|&(n, _)| n);
        for (peer, s) in due {
            let heard = self
                .groups
                .iter()
                .flatten()
                .any(|g| g.peers.contains_key(&peer));
            let dir_inc = self
                .directory
                .read(|d| d.get(peer).map(|e| e.record.incarnation));
            match dir_inc {
                None => {
                    // Already removed (a relayed Leave beat us to it).
                    self.suspicions.remove(&peer);
                }
                Some(inc) if heard || inc > s.incarnation => {
                    // Back among the living (or reborn at a higher
                    // incarnation): refutation wins.
                    self.refute_suspicion(ctx, peer, inc.max(s.incarnation), true);
                }
                Some(_) => {
                    self.suspicions.remove(&peer);
                    self.counters.suspicions_confirmed += 1;
                    ctx.count("membership", "suspicions_confirmed", 1);
                    ctx.emit(ProtocolEvent::SuspicionConfirmed { subject: peer.0 });
                    self.declare_peer_dead(ctx, peer, s.level);
                }
            }
        }
        // Advisory entries resolve via Refute/Join/Leave from the origin;
        // if none ever arrives (lost, or the origin died too), drop the
        // bookkeeping quietly after a generous hold.
        let advisory_hold = 6 * self.cfg.timeout(self.cfg.top_level());
        self.suspicions
            .retain(|_, s| !(s.advisory && now.saturating_sub(s.since) > advisory_hold));
    }

    /// Record freshly learned events in our log and multicast them to the
    /// given levels as one update message per level.
    fn relay_events(&mut self, ctx: &mut Context, events: Vec<MemberEvent>, levels: Vec<u8>) {
        if events.is_empty() || levels.is_empty() {
            return;
        }
        let now = ctx.now();
        // One batched log append returns the full piggyback window —
        // older fresh events (loss tolerance) followed by the new batch,
        // already deduped and seq-ordered.
        let window = self.log.push_batch(events, now);
        let n_events = window.len() as u32;
        let msg = Message::Update(UpdateMsg {
            origin: self.me,
            events: window,
        });
        for l in levels {
            self.counters.updates_sent += 1;
            ctx.count("membership", "updates_sent", 1);
            ctx.emit(ProtocolEvent::UpdateRelayed {
                level: l,
                events: n_events,
            });
            ctx.send_multicast(self.cfg.channel(l), self.cfg.ttl(l), msg.clone());
        }
    }

    fn send_heartbeats(&mut self, ctx: &mut Context) {
        for l in self.active_levels() {
            let g = self.groups[l as usize].as_mut().unwrap();
            g.hb_seq += 1;
            let msg = Message::Heartbeat(Heartbeat {
                from: self.me,
                level: l,
                seq: g.hb_seq,
                is_leader: g.leader == Some(self.me),
                backup: if g.leader == Some(self.me) {
                    g.backup
                } else {
                    None
                },
                latest_update_seq: self.log.latest_seq(),
                record: self.record.clone(),
            });
            ctx.count("membership", "heartbeats_sent", 1);
            ctx.emit(ProtocolEvent::HeartbeatSent { level: l });
            ctx.send_multicast(self.cfg.channel(l), self.cfg.ttl(l), msg);
        }
    }

    fn activate_level(&mut self, ctx: &mut Context, level: u8) {
        if self.groups[level as usize].is_some() {
            return;
        }
        let mut group = GroupState::new(level, ctx.now());
        // A warm-started node's directory was pre-seeded; pulling the
        // leader's snapshot would only re-fetch what it already holds.
        group.bootstrapped = self.cfg.warm_start;
        self.groups[level as usize] = Some(group);
        ctx.subscribe(self.cfg.channel(level));
        // Announce ourselves on the new channel immediately so existing
        // members learn of us within one heartbeat period.
        let latest = self.log.latest_seq();
        let g = self.groups[level as usize].as_mut().unwrap();
        g.hb_seq += 1;
        let msg = Message::Heartbeat(Heartbeat {
            from: self.me,
            level,
            seq: g.hb_seq,
            is_leader: false,
            backup: None,
            latest_update_seq: latest,
            record: self.record.clone(),
        });
        ctx.send_multicast(self.cfg.channel(level), self.cfg.ttl(level), msg);
    }

    /// Leave every level above `level` (used when we lose leadership of
    /// `level`'s lower group, or crash).
    fn deactivate_above(&mut self, ctx: &mut Context, level: u8) {
        for l in (level as usize + 1)..self.groups.len() {
            if self.groups[l].is_some() {
                self.groups[l] = None;
                ctx.unsubscribe(self.cfg.channel(l as u8));
            }
        }
    }

    fn become_leader(&mut self, ctx: &mut Context, level: u8) {
        let salt = ctx.rand_below(u64::MAX);
        let now = ctx.now();
        self.counters.leaderships_claimed += 1;
        ctx.count("membership", "leaderships_claimed", 1);
        ctx.emit(ProtocolEvent::LeadershipClaimed { level });
        let g = self.groups[level as usize].as_mut().unwrap();
        // An initial claim (no predecessor known on this channel) on a
        // warm-started node has nothing to re-stamp: every member was
        // pre-seeded with the same provenance this exchange would carry.
        // A takeover (the previous leader died) still does the full
        // §3.1.2 exchange.
        let takeover = g.leader.is_some_and(|l| l != self.me);
        g.leader = Some(self.me);
        g.election = Election::Idle;
        g.backup = g.pick_backup(salt);
        let backup = g.backup;
        ctx.send_multicast(
            self.cfg.channel(level),
            self.cfg.ttl(level),
            Message::Election(ElectionMsg::Coordinator {
                from: self.me,
                level,
                backup,
            }),
        );
        // Re-announce everything we know into the group so members
        // re-stamp the provenance of entries previously relayed by the
        // old leader ("the newly elected leader will join the same group
        // and exchange the membership information with other group
        // members", §3.1.2). reply_wanted: members answer with their own
        // snapshots — in overlapping-group topologies a member may hold
        // knowledge from its *other* group that this leader has never
        // seen, and the exchange must flow both ways.
        if !self.cfg.warm_start || takeover {
            let records = self.directory.read(|d| d.snapshot());
            if !records.is_empty() {
                ctx.send_multicast(
                    self.cfg.channel(level),
                    self.cfg.ttl(level),
                    Message::DirectoryExchange(DirectoryExchange {
                        from: self.me,
                        reply_wanted: true,
                        latest_seq: self.log.latest_seq(),
                        records,
                    }),
                );
            }
        }
        // Group leaders join the next level up (TTL grows by one).
        let next = level + 1;
        if next <= self.cfg.top_level() {
            self.activate_level(ctx, next);
        }
        let _ = now;
        self.update_probe();
    }

    /// A peer stopped being heard in our level-`level` group. With the
    /// suspicion layer on, this only *suspects* it; removal happens in
    /// [`MembershipNode::process_suspicions`] if no refutation arrives
    /// within the window.
    fn handle_peer_timeout(&mut self, ctx: &mut Context, peer: NodeId, level: u8) {
        // Still heard elsewhere? Then it is not dead, we just fell out of
        // one shared channel (e.g. it abdicated a leadership).
        let heard_elsewhere = self
            .groups
            .iter()
            .flatten()
            .any(|g| g.peers.contains_key(&peer));
        if heard_elsewhere {
            return;
        }
        // The peer just left group coverage: entries it covered may now be
        // catch-all eligible, so re-arm the throttled scan.
        self.next_catchall = 0;
        if self.cfg.removal_discipline == RemovalDiscipline::CutDetection {
            self.report_cut(ctx, peer, level);
        } else if self.cfg.suspicion_window == 0 {
            self.declare_peer_dead(ctx, peer, level);
        } else {
            self.raise_suspicion(ctx, peer, level);
        }
    }

    /// Confirmed death of `peer` (suspicion window expired unrefuted, or
    /// the suspicion layer is disabled): remove it, and deal with the
    /// subtree it may have been relaying.
    fn declare_peer_dead(&mut self, ctx: &mut Context, peer: NodeId, level: u8) {
        self.counters.deaths_declared += 1;
        ctx.count("membership", "deaths_declared", 1);

        let now = ctx.now();
        let mut events: Vec<MemberEvent> = Vec::new();

        // Direct death: remove from the directory.
        let inc = self
            .directory
            .read(|d| d.get(peer).map(|e| e.record.incarnation));
        if let Some(inc) = inc {
            let applied = self.directory.update(|d| {
                let a = d.apply_leave(peer, inc, now);
                (a.changed(), a)
            });
            if applied.changed() {
                ctx.observe_removed(peer);
                events.push(MemberEvent::Leave(peer, inc));
            }
        }

        // Timeout protocol: a dead node detected at level > 0 used to
        // take down everything it relayed to us (switch/partition
        // detection). With a quarantine window the subtree is instead
        // held in escrow for a successor to re-vouch; only an expired
        // quarantine purges. At level 0 the relayed entries survive
        // either way — the backup leader re-stamps them after takeover.
        if level > 0 {
            if self.cfg.quarantine_window > 0 {
                self.quarantine_subtree(ctx, peer);
            } else {
                let purged = self.directory.update(|d| {
                    let v = d.purge_relayed_by(peer);
                    (!v.is_empty(), v)
                });
                for r in purged {
                    ctx.observe_removed(r.node);
                    events.push(MemberEvent::Leave(r.node, r.incarnation));
                    self.seqs.forget(r.node);
                }
            }
        }

        self.seqs.forget(peer);
        let levels = self.relay_levels(level);
        self.relay_events(ctx, events, levels);
    }

    fn start_or_progress_election(&mut self, ctx: &mut Context, level: u8) {
        let now = ctx.now();
        let me = self.me;
        let cfg_listen = self.cfg.listen_period;
        let cfg_backup_grace = self.cfg.backup_grace;
        let cfg_election = self.cfg.election_timeout;

        let g = self.groups[level as usize].as_mut().unwrap();
        if g.leader_present(me) {
            return;
        }
        // Give a fresh channel time to reveal an existing leader first.
        if now < g.joined_at + cfg_listen {
            return;
        }
        match g.election {
            Election::Idle => {
                if g.backup == Some(me) {
                    // Fast path: the paper's backup takeover.
                    self.become_leader(ctx, level);
                } else if g.backup.is_some_and(|b| g.peers.contains_key(&b)) {
                    // A live backup exists; give it a grace period.
                    g.election = Election::AwaitingBackup {
                        deadline: now + cfg_backup_grace,
                    };
                    ctx.set_timer(cfg_backup_grace, election_token(level));
                } else if g.am_lowest(me) {
                    // Bully: the lowest id claims directly.
                    self.become_leader(ctx, level);
                } else {
                    // Wait for the lower-id member to claim; if it does
                    // not (it may be deaf or about to fail), escalate by
                    // announcing our own candidacy at the deadline.
                    self.counters.elections_started += 1;
                    ctx.count("membership", "elections_started", 1);
                    ctx.emit(ProtocolEvent::ElectionRound { level });
                    let g = self.groups[level as usize].as_mut().unwrap();
                    ctx.send_multicast(
                        self.cfg.channel(level),
                        self.cfg.ttl(level),
                        Message::Election(ElectionMsg::Election { from: me, level }),
                    );
                    g.election = Election::Candidate {
                        deadline: now + cfg_election,
                    };
                    ctx.set_timer(cfg_election, election_token(level));
                }
            }
            Election::AwaitingBackup { deadline } => {
                if now >= deadline {
                    // Backup never took over; strike it and retry.
                    g.backup = None;
                    g.election = Election::Idle;
                    self.start_or_progress_election(ctx, level);
                }
            }
            Election::Candidate { deadline } => {
                if now >= deadline {
                    // No objection from a lower id, no rival coordinator.
                    self.become_leader(ctx, level);
                }
            }
        }
    }

    fn sweep(&mut self, ctx: &mut Context) {
        let now = ctx.now();
        // Apply deferred application commands; an actual change is
        // announced immediately (peers apply it as a same-incarnation
        // content update and relay it on).
        let cmds: Vec<ServiceCommand> = std::mem::take(&mut *self.control.lock());
        if !cmds.is_empty() {
            for cmd in cmds {
                match cmd {
                    ServiceCommand::Register(svc) => self.register_service(svc),
                    ServiceCommand::Unregister(name) => {
                        self.cfg.services.retain(|s| s.name != name);
                        self.rebuild_record();
                    }
                    ServiceCommand::UpdateValue(k, v) => self.update_value(&k, &v),
                    ServiceCommand::DeleteValue(k) => self.delete_value(&k),
                    ServiceCommand::GracefulLeave => {
                        // Announce our own departure into every active
                        // group, then stop participating: peers apply the
                        // leave at once (no 5 s timeout) and the next
                        // restart's higher incarnation re-adds us cleanly.
                        let inc = self.incarnation;
                        let me = self.me;
                        let levels = self.active_levels();
                        self.relay_events(ctx, vec![MemberEvent::Leave(me, inc)], levels);
                        for l in self.active_levels() {
                            ctx.unsubscribe(self.cfg.channel(l));
                        }
                        for g in &mut self.groups {
                            *g = None;
                        }
                        self.directory.update(|d| {
                            *d = tamp_directory::Directory::new();
                            (true, ())
                        });
                        self.crashed = true; // a future on_start is a fresh life
                        self.update_probe();
                        return;
                    }
                }
            }
            let me_rec = self.record.clone();
            self.directory
                .update(|d| (d.apply_join(me_rec, Provenance::Local, now).changed(), ()));
            self.send_heartbeats(ctx);
        }
        // Graceful degradation: measured heavy loss widens the effective
        // timeout (in effect widening MAX_LOSS) while the distress lasts.
        // One evaluation covers every level in this sweep.
        let stretch = self.distress_stretch(now);
        for level in self.active_levels() {
            let timeout = (self.cfg.timeout(level) as f64 * stretch) as u64;
            let adaptive = self.cfg.adaptive_timeout;
            let max_loss = self.cfg.max_loss;
            let expired = {
                let g = self.groups[level as usize].as_mut().unwrap();
                let ex = if adaptive {
                    // Level scaling carries over: the fixed per-level
                    // timeout acts as the floor/fallback.
                    g.expired_peers_adaptive(now, max_loss, timeout)
                } else {
                    g.expired_peers(now, timeout)
                };
                for &p in &ex {
                    g.remove_peer(p);
                }
                ex
            };
            for peer in expired {
                self.handle_peer_timeout(ctx, peer, level);
            }
        }
        self.process_suspicions(ctx);
        self.process_cuts(ctx);
        self.process_quarantines(ctx);
        // Leadership invariant: we sit at level ℓ+1 only while leading ℓ.
        for level in self.active_levels() {
            if level > 0 && !self.am_leader(level - 1) {
                self.groups[level as usize] = None;
                ctx.unsubscribe(self.cfg.channel(level));
                // Entries only that group covered may now be catch-all
                // eligible: re-arm the throttled scan.
                self.next_catchall = 0;
            }
        }
        // Elections and backup maintenance.
        for level in self.active_levels() {
            self.start_or_progress_election(ctx, level);
            // A leader whose backup died picks a fresh one.
            if self.am_leader(level) {
                let salt = ctx.rand_below(u64::MAX);
                let g = self.groups[level as usize].as_mut().unwrap();
                let backup_alive = g.backup.is_some_and(|b| g.peers.contains_key(&b));
                if !backup_alive && !g.peers.is_empty() {
                    g.backup = g.pick_backup(salt);
                    let backup = g.backup;
                    ctx.send_multicast(
                        self.cfg.channel(level),
                        self.cfg.ttl(level),
                        Message::Election(ElectionMsg::Coordinator {
                            from: self.me,
                            level,
                            backup,
                        }),
                    );
                }
            }
        }
        // Catch-all expiry for direct entries no longer covered by any
        // group (rare; e.g. heard during a transient overlap). The scan
        // walks the whole directory, so it only runs when an entry could
        // actually have rotted: `next_catchall` is re-armed from the
        // earliest surviving deadline, capped by `top_timeout` (coverage
        // changes also force a rescan via `next_catchall = 0`).
        if now >= self.next_catchall {
            let top_timeout = 2 * self.cfg.timeout(self.cfg.top_level());
            let in_groups: std::collections::HashSet<NodeId> = self
                .groups
                .iter()
                .flatten()
                .flat_map(|g| g.peers.keys().copied())
                .collect();
            // Relayed entries must be re-vouched by *somebody's* digest
            // within a few anti-entropy periods, or they rot: the last line
            // of defense against ghost members that no live node actually
            // hears. Disabled together with anti-entropy (paper mode keeps
            // relayed lifetimes purely relayer-bound).
            let relayed_rot = if self.cfg.anti_entropy_period > 0 {
                6 * self.cfg.anti_entropy_period
            } else {
                u64::MAX
            };
            let (removed, next_due) = self.directory.update(|d| {
                let (v, next) = d.expire_with_next(now, |e| match e.provenance {
                    Provenance::Local => u64::MAX,
                    Provenance::Relayed(_) => relayed_rot,
                    Provenance::Direct => {
                        if in_groups.contains(&e.record.node) {
                            u64::MAX // group sweeps own this entry
                        } else {
                            top_timeout
                        }
                    }
                });
                (!v.is_empty(), (v, next))
            });
            self.next_catchall = next_due
                .min(now.saturating_add(top_timeout))
                .max(now.saturating_add(self.cfg.sweep_period));
            if !removed.is_empty() {
                let mut events = Vec::new();
                for r in removed {
                    ctx.observe_removed(r.node);
                    events.push(MemberEvent::Leave(r.node, r.incarnation));
                }
                let levels = self.relay_levels(u8::MAX); // lateral only: groups we lead
                self.relay_events(ctx, events, levels);
            }
        }
        self.update_probe();
    }

    fn own_digest_entries(&self) -> Vec<DigestEntry> {
        // The directory maintains this incrementally (sorted by node id);
        // per tick we only pay for the copy into the outgoing message.
        self.directory.read(|d| d.digest().to_vec())
    }

    /// Anti-entropy tick: multicast an (id, incarnation) digest into
    /// every group we lead.
    fn send_digests(&mut self, ctx: &mut Context) {
        let entries: Vec<DigestEntry> = self.own_digest_entries();
        for l in self.active_levels() {
            if self.am_leader(l) {
                self.counters.digests_sent += 1;
                ctx.count("membership", "digests_sent", 1);
                ctx.send_multicast(
                    self.cfg.channel(l),
                    self.cfg.ttl(l),
                    Message::Digest(DigestMsg {
                        from: self.me,
                        level: l,
                        entries: entries.clone(),
                    }),
                );
            }
        }
    }

    /// Reconcile against a leader's digest: pull what we miss, drop what
    /// this relayer no longer vouches for.
    fn handle_digest(&mut self, ctx: &mut Context, meta: PacketMeta, d: &DigestMsg) {
        self.handle_digest_generic(ctx, meta, d.from, d.level, d.entries.iter().copied());
    }

    /// The single digest implementation behind both the owned path and
    /// the borrowed wire view (whose entry iterator decodes 12-byte
    /// chunks in place — no `Vec<DigestEntry>` is ever allocated).
    fn handle_digest_generic(
        &mut self,
        ctx: &mut Context,
        meta: PacketMeta,
        from: NodeId,
        level: u8,
        entries: impl Iterator<Item = DigestEntry> + Clone,
    ) {
        if from == self.me {
            return;
        }
        if let Some(g) = self.groups.get_mut(level as usize).and_then(|g| g.as_mut()) {
            g.heard(from, ctx.now(), false, 0);
        }
        let in_digest: std::collections::HashMap<NodeId, u64> =
            entries.clone().map(|e| (e.node, e.incarnation)).collect();
        // A digest is the leader vouching for everything it lists:
        // refresh matching entries so vouched-for relayed knowledge never
        // hits the staleness expiry below (sweep's relayed-entry rot).
        let now = ctx.now();
        self.directory.update(|dir| {
            for e in entries.clone() {
                if dir
                    .get(e.node)
                    .is_some_and(|have| have.record.incarnation == e.incarnation)
                {
                    dir.refresh(e.node, now);
                }
            }
            (false, ())
        });
        // Death knowledge must flow *against* the vouching direction
        // too: if the digest lists a node we hold a fresh tombstone for,
        // the digesting leader is advertising a ghost — push the death
        // back at it before our tombstone ages out and the ghost
        // re-infects us. (Presence propagates by pull; without this,
        // absence always loses the race after a partition of knowledge —
        // found by the `views_always_converge_to_live_set` property.)
        // Settling gate: a *young* tombstone may be a false positive
        // about to be refuted by the victim's own heartbeats — pushing
        // it would amplify a local mistake into a global one. After a
        // few heartbeat periods of continued silence, the death is
        // considered confirmed.
        let settled = 3 * self.cfg.heartbeat_period;
        let dead_listed: Vec<(NodeId, u64)> = self.directory.read(|dir| {
            entries
                .clone()
                .filter(|e| !dir.contains(e.node))
                .filter_map(|e| {
                    dir.tombstone_of(e.node).and_then(|(dead_inc, at)| {
                        let age = now.saturating_sub(at);
                        (dead_inc >= e.incarnation && age >= settled && age < dir.tombstone_ttl())
                            .then_some((e.node, dead_inc))
                    })
                })
                .collect()
        });
        if !dead_listed.is_empty() {
            let mut events = Vec::new();
            for (n, inc) in dead_listed {
                let window = self.log.push(MemberEvent::Leave(n, inc), now);
                events.push(window.into_iter().last().unwrap());
            }
            ctx.send_unicast(
                from,
                Message::Update(UpdateMsg {
                    origin: self.me,
                    events,
                }),
            );
        }

        // Anything the leader knows that we lack (or only know at an
        // older incarnation) is worth a full pull — ignoring nodes whose
        // death we just pushed back.
        let missing = self.directory.read(|dir| {
            entries.clone().any(|e| {
                e.node != self.me
                    && dir
                        .fresh_tombstone(e.node, now)
                        .is_none_or(|i| i < e.incarnation)
                    && dir
                        .get(e.node)
                        .is_none_or(|have| have.record.incarnation < e.incarnation)
            })
        });
        if missing {
            self.maybe_sync_poll(ctx, from);
        }
        // Entries we hold *on this leader's word* that it no longer
        // vouches for are orphans: drop them (no tombstone — the node may
        // be alive and will come back via the normal paths if so). The
        // freshness gate matters under heavy loss: an entry refreshed
        // since the digest was cut (a sync response or update racing the
        // digest) must not be dropped on the digest's older word.
        let stale_before = ctx.now().saturating_sub(self.cfg.anti_entropy_period / 2);
        let orphans: Vec<NodeId> = self.directory.read(|dir| {
            dir.entries()
                .filter(|e| {
                    e.provenance == Provenance::Relayed(from)
                        && !in_digest.contains_key(&e.record.node)
                        && e.last_refresh <= stale_before
                })
                .map(|e| e.record.node)
                .collect()
        });
        if !orphans.is_empty() {
            let mut events = Vec::new();
            for n in orphans {
                let removed = self.directory.update(|dir| {
                    let r = dir.remove(n);
                    (r.is_some(), r)
                });
                if let Some(rec) = removed {
                    ctx.observe_removed(n);
                    events.push(MemberEvent::Leave(n, rec.incarnation));
                }
            }
            let levels = self.relay_levels(level);
            self.relay_events(ctx, events, levels);
        }

        // Digests are bidirectional: a *multicast* digest from our group
        // leader gets a unicast digest echo, so the leader's entries are
        // vouched too (in particular the tree root, which no one else
        // digests to), and the death back-push above also fires in the
        // member → leader direction at the leader's side.
        if meta.channel.is_some() {
            ctx.send_unicast(
                from,
                Message::Digest(DigestMsg {
                    from: self.me,
                    level,
                    entries: self.own_digest_entries(),
                }),
            );
        }
        self.update_probe();
    }

    // ---------------------------------------------------------- handlers

    fn handle_heartbeat(&mut self, ctx: &mut Context, hb: &Heartbeat) {
        self.handle_heartbeat_generic(
            ctx,
            HeartbeatHeader {
                from: hb.from,
                level: hb.level,
                is_leader: hb.is_leader,
                backup: hb.backup,
                latest_update_seq: hb.latest_update_seq,
                rec_node: hb.record.node,
                rec_incarnation: hb.record.incarnation,
            },
            || hb.record.clone(),
            |e| *e == hb.record,
        );
    }

    /// Zero-copy heartbeat entry point: header fields come straight off
    /// the borrowed view; the record is only materialized when the
    /// directory actually stores it (first join, incarnation bump,
    /// content republish) or a refutation must carry it.
    fn handle_heartbeat_view(&mut self, ctx: &mut Context, hb: &tamp_wire::HeartbeatView<'_>) {
        self.handle_heartbeat_generic(
            ctx,
            HeartbeatHeader {
                from: hb.from,
                level: hb.level,
                is_leader: hb.is_leader,
                backup: hb.backup,
                latest_update_seq: hb.latest_update_seq,
                rec_node: hb.record.node,
                rec_incarnation: hb.record.incarnation,
            },
            || hb.record.to_record(),
            |e| hb.record.matches(e),
        );
    }

    /// The single heartbeat implementation behind both the owned and
    /// the borrowed paths. `make_record` materializes the sender's
    /// record (cheap Arc bump when owned, a decode when borrowed) and
    /// `same` answers content-equality against a stored record without
    /// materializing; a conservative `false` only costs one
    /// materialization.
    fn handle_heartbeat_generic(
        &mut self,
        ctx: &mut Context,
        hb: HeartbeatHeader,
        make_record: impl Fn() -> NodeRecord,
        same: impl Fn(&NodeRecord) -> bool,
    ) {
        if hb.from == self.me {
            return;
        }
        let Some(g) = self
            .groups
            .get_mut(hb.level as usize)
            .and_then(|g| g.as_mut())
        else {
            return;
        };
        let now = ctx.now();
        g.heard_heartbeat(hb.from, now, hb.is_leader, hb.rec_incarnation);

        // Leader adoption & rivalry resolution.
        let mut reassert = false;
        let mut lost_leadership = false;
        if hb.is_leader {
            match g.leader {
                Some(l) if l == self.me => {
                    if hb.from < self.me {
                        // Sticky rule does not protect us from a *lower*
                        // id that already considers itself leader (group
                        // merge after a partition heals): lowest wins.
                        g.leader = Some(hb.from);
                        g.backup = hb.backup;
                        g.election = Election::Idle;
                        lost_leadership = true;
                    } else {
                        reassert = true;
                    }
                }
                Some(l) => {
                    // Prefer the incumbent we already track if it is
                    // alive *and still claiming* (an incumbent that
                    // stopped claiming has abdicated — following it
                    // forever would wedge the group in disagreement);
                    // otherwise adopt the claimant. Two live claimants
                    // resolve to the lower id.
                    let incumbent_alive = g.peers.get(&l).is_some_and(|p| p.claims_leader);
                    if !incumbent_alive || hb.from < l {
                        g.leader = Some(hb.from);
                        g.backup = hb.backup;
                        g.election = Election::Idle;
                    }
                }
                None => {
                    g.leader = Some(hb.from);
                    g.backup = hb.backup;
                    g.election = Election::Idle;
                }
            }
        }
        let level = hb.level;
        let leader_now = g.leader;
        // Bootstrap pull, retried every two heartbeat periods until the
        // leader's reply arrives (the request or reply may be lost).
        let needs_bootstrap = !g.bootstrapped
            && hb.is_leader
            && leader_now == Some(hb.from)
            && (g.last_bootstrap_attempt == 0
                || now.saturating_sub(g.last_bootstrap_attempt) >= 2 * self.cfg.heartbeat_period);
        if needs_bootstrap {
            g.last_bootstrap_attempt = now;
        }

        if lost_leadership {
            self.deactivate_above(ctx, level);
        }
        if reassert {
            let g = self.groups[level as usize].as_ref().unwrap();
            let backup = g.backup;
            ctx.send_multicast(
                self.cfg.channel(level),
                self.cfg.ttl(level),
                Message::Election(ElectionMsg::Coordinator {
                    from: self.me,
                    level,
                    backup,
                }),
            );
        }

        // Yellow-page maintenance + join detection. On the dominant
        // same-incarnation refresh path the record is never built: the
        // directory's generic join only calls `make_record` when it
        // stores. A relayed Join reuses the freshly stored record (an
        // Arc bump) instead of materializing again.
        let (changed, _is_new) =
            self.apply_direct_with(ctx, hb.rec_node, hb.rec_incarnation, &make_record, &same);
        if changed {
            let stored = self
                .directory
                .read(|d| d.get(hb.rec_node).map(|e| e.record.clone()));
            if let Some(rec) = stored {
                let levels = self.relay_levels(level);
                self.relay_events(ctx, vec![MemberEvent::Join(rec)], levels);
            }
        }

        // Proof of life: a heartbeat from a node we (or the tree) suspect
        // refutes the suspicion. Relay the refutation to where the
        // suspicion travelled — for a plain member the relay set is
        // empty, so only leaders speak for their members upward (the
        // "group leader refutes on the suspect's behalf" path).
        if self.refute_suspicion(ctx, hb.from, hb.rec_incarnation, true) {
            let levels = self.relay_levels(level);
            self.relay_events(ctx, vec![MemberEvent::Refute(make_record())], levels);
        }

        // Bootstrap pull: first leader heard on this channel.
        if needs_bootstrap {
            let records = self.directory.read(|d| d.snapshot());
            ctx.send_unicast(
                hb.from,
                Message::DirectoryExchange(DirectoryExchange {
                    from: self.me,
                    reply_wanted: true,
                    latest_seq: self.log.latest_seq(),
                    records,
                }),
            );
        }

        // Loss repair: the heartbeat advertises how many updates its
        // sender has originated. If we have applied fewer, an update
        // multicast was lost — poll the sender for a resync.
        let advertised = hb.latest_update_seq;
        if advertised > self.seqs.last_applied(hb.from).unwrap_or(0) {
            self.maybe_sync_poll(ctx, hb.from);
        }
        self.update_probe();
    }

    fn apply_relayed_records(
        &mut self,
        ctx: &mut Context,
        relayer: NodeId,
        records: &[RelayedRecord],
    ) -> Vec<MemberEvent> {
        let now = ctx.now();
        let mut fresh = Vec::new();
        for rr in records {
            let node = rr.record.node;
            if node == self.me {
                continue;
            }
            let provenance = if node == relayer {
                Provenance::Direct
            } else {
                Provenance::Relayed(relayer)
            };
            let (was_known, applied) = self.directory.update(|d| {
                let was = d.contains(node);
                let a = d.apply_join(rr.record.clone(), provenance, now);
                (a.changed(), (was, a))
            });
            if applied == Applied::Changed {
                if !was_known {
                    ctx.observe_added(node);
                }
                fresh.push(MemberEvent::Join(rr.record.clone()));
            }
            // Snapshot records refute suspicions the same way Join events
            // do: a higher incarnation always, same incarnation only for
            // advisory suspicions (the relayer vouches; the origin group
            // keeps the confirmation call for its own suspicions).
            if let Some(s) = self.suspicions.get(&node).copied() {
                let inc = rr.record.incarnation;
                if inc > s.incarnation || (s.advisory && inc >= s.incarnation) {
                    self.refute_suspicion(ctx, node, inc.max(s.incarnation), false);
                }
            }
        }
        fresh
    }

    fn handle_exchange(&mut self, ctx: &mut Context, meta: PacketMeta, d: &DirectoryExchange) {
        if d.from == self.me {
            return;
        }
        // Adopt the sender's update baseline: its past updates are
        // subsumed by this snapshot and must not register as gaps.
        self.seqs.advance(d.from, d.latest_seq);
        // Only a *unicast* reply from our group leader completes the
        // bootstrap handshake. A leader's multicast snapshot (provenance
        // re-stamping after takeover) must not: the paper's bootstrap is
        // two-way — "the group leader also asks the new node for the
        // membership information that it is aware of" — and our offer has
        // not been made yet.
        if !d.reply_wanted && meta.channel.is_none() {
            for g in self.groups.iter_mut().flatten() {
                if g.leader == Some(d.from) {
                    g.bootstrapped = true;
                }
            }
        }
        let fresh = self.apply_relayed_records(ctx, d.from, &d.records);
        // Anything new travels onward: up the tree and into every group
        // we lead (the exchange was point-to-point, so no group already
        // carried it).
        let levels = self.relay_levels_all();
        self.relay_events(ctx, fresh, levels);
        if d.reply_wanted {
            let records = self.directory.read(|d| d.snapshot());
            ctx.send_unicast(
                d.from,
                Message::DirectoryExchange(DirectoryExchange {
                    from: self.me,
                    reply_wanted: false,
                    latest_seq: self.log.latest_seq(),
                    records,
                }),
            );
        }
        self.update_probe();
    }

    /// An accusation (leave / suspect / cut-detection alert) names us at
    /// a current-or-future incarnation — a false positive. Refute by
    /// re-incarnating (SWIM-style: the refutation must carry a strictly
    /// higher incarnation to beat the accusation everywhere, not just
    /// here) and return the `Refute` event to relay.
    fn refute_self_accusation(&mut self, ctx: &mut Context, inc: u64) -> Option<MemberEvent> {
        if inc < self.incarnation {
            return None;
        }
        self.incarnation = inc + 1;
        self.rebuild_record();
        let me_rec = self.record.clone();
        let now = ctx.now();
        self.directory
            .update(|d| (d.apply_join(me_rec, Provenance::Local, now).changed(), ()));
        self.send_heartbeats(ctx);
        Some(MemberEvent::Refute(self.record.clone()))
    }

    fn handle_update(&mut self, ctx: &mut Context, meta: PacketMeta, u: &UpdateMsg) {
        if u.origin == self.me || u.events.is_empty() {
            return;
        }
        let arrival = meta
            .channel
            .and_then(|c| self.level_of_channel(c))
            .unwrap_or(0);
        let now = ctx.now();
        let newest = u.events.iter().map(|e| e.seq).max().unwrap();
        let last = self.seqs.last_applied(u.origin);

        // Loss detection: if even the oldest piggybacked event leaves a
        // gap, the window cannot repair us — poll the origin for a full
        // directory image.
        if let Some(last) = last {
            let oldest = u.events.iter().map(|e| e.seq).min().unwrap();
            if oldest > last + 1 {
                self.maybe_sync_poll(ctx, u.origin);
            }
        }

        let relayer = NodeId(meta.src.0);
        let mut effective: Vec<MemberEvent> = Vec::new();
        for ev in &u.events {
            // No staleness gate here: relay paths of different lengths
            // (plus delivery jitter) can reorder messages from one
            // origin, so a sequence high-water mark must not suppress
            // events. Idempotence does the deduplication — the directory
            // is incarnation-ordered, a replayed event comes back
            // `Ignored`, and only *effective* events are forwarded, which
            // is what terminates the relay flood. The sequence numbers
            // exist for gap detection (sync polling) above.
            let mut cleared_suspicion = false;
            match &ev.event {
                // A leave or suspicion naming us with a current/future
                // incarnation is a false positive — refute by
                // re-incarnating.
                MemberEvent::Leave(n, inc) | MemberEvent::Suspect(n, inc) if *n == self.me => {
                    if let Some(refute) = self.refute_self_accusation(ctx, *inc) {
                        effective.push(refute);
                    }
                    continue;
                }
                MemberEvent::Alert {
                    subject,
                    incarnation,
                    ..
                } if *subject == self.me => {
                    if let Some(refute) = self.refute_self_accusation(ctx, *incarnation) {
                        effective.push(refute);
                    }
                    continue;
                }
                MemberEvent::Leave(n, inc) => {
                    // Refutation always wins: a silence-based removal at
                    // an incarnation we saw alive after suspecting is
                    // stale news — answer it with the proof instead of
                    // applying it.
                    if self.recently_refuted(*n, *inc, now) {
                        if let Some(rec) = self.directory.read(|d| {
                            d.get(*n)
                                .filter(|e| e.record.incarnation >= *inc)
                                .map(|e| e.record.clone())
                        }) {
                            effective.push(MemberEvent::Refute(rec));
                        }
                        continue;
                    }
                    // Fresh direct evidence beats a relayed removal, just
                    // as it beats a relayed suspicion below: under an
                    // asymmetric (gray) fabric fault, a remote group can
                    // "confirm" the death of a node we still hear
                    // heartbeating on the local segment. Applying that
                    // removal would be a false removal attributable to
                    // asymmetry alone — refute on the node's behalf
                    // instead, at an incarnation that beats the claim.
                    // Exception: the subject announcing its *own* leave
                    // (graceful departure) is definitive — heartbeats
                    // were fresh right up to the announcement.
                    let heard_recently = relayer != *n
                        && self.groups.iter().flatten().any(|g| {
                            g.peers.get(n).is_some_and(|p| {
                                now.saturating_sub(p.last_heard) <= 2 * self.cfg.heartbeat_period
                            })
                        });
                    if heard_recently {
                        if let Some(rec) = self.directory.read(|d| {
                            d.get(*n)
                                .filter(|e| e.record.incarnation >= *inc)
                                .map(|e| e.record.clone())
                        }) {
                            // Arm the Leave-blocker (fresh direct liveness
                            // is proof) so replays of this accusation are
                            // answered by the branch above instead of
                            // being re-relayed — that bounds the flood.
                            self.refuted.insert(*n, (rec.incarnation, now));
                            effective.push(MemberEvent::Refute(rec));
                            // Still relay the accusation itself: our
                            // same-incarnation proof cannot beat the
                            // death claim at observers with no direct
                            // evidence. Only the subject's own higher
                            // re-incarnation can, and the subject must
                            // see the claim to issue it.
                            effective.push(ev.event.clone());
                            continue;
                        }
                    }
                    // A removal consumes any open suspicion and any
                    // pending cut votes: the origin confirmed what we
                    // (or the tree) suspected.
                    self.suspicions.remove(n);
                    self.cuts.remove(n);
                }
                MemberEvent::Suspect(n, inc) => {
                    let n = *n;
                    let inc = *inc;
                    // Fresh direct evidence beats a relayed accusation:
                    // refute on the suspect's behalf (the group-leader
                    // path — we hear the node, the accuser cannot).
                    let heard_recently = self.groups.iter().flatten().any(|g| {
                        g.peers.get(&n).is_some_and(|p| {
                            now.saturating_sub(p.last_heard) <= 2 * self.cfg.heartbeat_period
                        })
                    });
                    if heard_recently || self.recently_refuted(n, inc, now) {
                        if let Some(rec) = self.directory.read(|d| {
                            d.get(n)
                                .filter(|e| e.record.incarnation >= inc)
                                .map(|e| e.record.clone())
                        }) {
                            effective.push(MemberEvent::Refute(rec));
                        }
                        continue;
                    }
                    // Adopt as an advisory suspicion (we never confirm it
                    // ourselves — the origin group does) so that a later
                    // relayed `Leave` finds the suspicion already
                    // observed here, and relay it onward exactly once.
                    let known_at = self
                        .directory
                        .read(|d| d.get(n).map(|e| e.record.incarnation));
                    let already = self
                        .suspicions
                        .get(&n)
                        .is_some_and(|s| s.incarnation >= inc);
                    if known_at.is_some_and(|k| k <= inc) && !already {
                        self.suspicions.insert(
                            n,
                            Suspicion {
                                incarnation: inc,
                                level: arrival,
                                since: now,
                                window: 0,
                                advisory: true,
                            },
                        );
                        self.counters.suspicions_raised += 1;
                        ctx.count("membership", "suspicions_raised", 1);
                        ctx.emit(ProtocolEvent::SuspicionArmed { subject: n.0 });
                        ctx.observe_suspected(n);
                        effective.push(ev.event.clone());
                    }
                    continue;
                }
                MemberEvent::Alert {
                    subject,
                    incarnation,
                    reporter,
                } => {
                    let (n, inc, rep) = (*subject, *incarnation, *reporter);
                    // Counter-evidence beats a vote exactly as it beats a
                    // relayed `Suspect`: fresh direct liveness (or a
                    // refutation we already hold) answers with proof
                    // instead of recording the report.
                    let heard_recently = self.groups.iter().flatten().any(|g| {
                        g.peers.get(&n).is_some_and(|p| {
                            now.saturating_sub(p.last_heard) <= 2 * self.cfg.heartbeat_period
                        })
                    });
                    if heard_recently || self.recently_refuted(n, inc, now) {
                        if let Some(rec) = self.directory.read(|d| {
                            d.get(n)
                                .filter(|e| e.record.incarnation >= inc)
                                .map(|e| e.record.clone())
                        }) {
                            effective.push(MemberEvent::Refute(rec));
                        }
                        continue;
                    }
                    // Aggregate the vote; a (subject, reporter) pair we
                    // had not seen travels onward exactly once, which
                    // terminates the flood.
                    let known_at = self
                        .directory
                        .read(|d| d.get(n).map(|e| e.record.incarnation));
                    if known_at.is_some_and(|k| k <= inc)
                        && self.record_cut_report(ctx, n, inc, rep, arrival, now)
                    {
                        effective.push(ev.event.clone());
                    }
                    continue;
                }
                MemberEvent::Refute(r) => {
                    // Proof of life: clears local suspicion state. The
                    // record itself flows into the directory below; the
                    // event stays effective (keeps relaying) as long as
                    // it is still clearing suspicions somewhere.
                    if r.node != self.me && self.refute_suspicion(ctx, r.node, r.incarnation, true)
                    {
                        cleared_suspicion = true;
                    }
                }
                MemberEvent::Join(r) => {
                    // A higher-incarnation join is a rebirth: it refutes
                    // any suspicion of an earlier life. (A same-
                    // incarnation join does not — piggyback windows
                    // replay recent joins routinely, and a stale echo
                    // must not mask a real death. Advisory suspicions
                    // accept same-incarnation vouching: the origin group
                    // owns that call.)
                    if let Some(s) = self.suspicions.get(&r.node).copied() {
                        if r.incarnation > s.incarnation
                            || (s.advisory && r.incarnation >= s.incarnation)
                        {
                            self.refute_suspicion(
                                ctx,
                                r.node,
                                r.incarnation.max(s.incarnation),
                                false,
                            );
                        }
                    }
                }
            }
            let provenance = match &ev.event {
                MemberEvent::Join(r) if r.node == relayer => Provenance::Direct,
                MemberEvent::Refute(r) if r.node == relayer => Provenance::Direct,
                _ => Provenance::Relayed(relayer),
            };
            let (changed, was_known) = self.directory.update(|d| {
                let was = d.contains(ev.event.subject());
                let a = d.apply_event(&ev.event, provenance, now);
                (a.changed(), (a.changed(), was))
            });
            if changed || cleared_suspicion {
                // Anything that changed the directory — joins, leaves,
                // *and* same-incarnation content updates (the paper's
                // update_value flow) — relays onward, as does a
                // refutation that cleared a suspicion here (it may still
                // have suspicions to clear further on). Observations
                // track membership transitions only.
                effective.push(ev.event.clone());
            }
            if changed {
                match &ev.event {
                    MemberEvent::Join(_) if !was_known => ctx.observe_added(ev.event.subject()),
                    MemberEvent::Leave(..) => ctx.observe_removed(ev.event.subject()),
                    MemberEvent::Refute(r) if !was_known => ctx.observe_added(r.node),
                    _ => {}
                }
            }
        }
        self.seqs.advance(u.origin, newest);

        if !effective.is_empty() {
            // Relay onward, *re-originated* under our own sequence
            // numbers: within every group, updates then carry the direct
            // sender's contiguous seqs, so the sender's heartbeat
            // (advertising its latest seq) detects losses and "the
            // receiver polls the sender". Only events that actually
            // changed our directory are relayed, which terminates the
            // flood (a cycle re-delivers them as no-ops).
            let levels = self.relay_levels(arrival);
            self.relay_events(ctx, effective, levels);
        }
        self.update_probe();
    }

    fn handle_sync_request(&mut self, ctx: &mut Context, q: &SyncRequest) {
        // Cheap path: if the requester's gap fits inside our retained
        // piggyback window, backfill with just those events — this is
        // what bounds the cost of ≤ window-1 consecutive losses (§3.1.2).
        // Only beyond-window gaps pay for a full directory image.
        let now = ctx.now();
        if q.since_seq < self.log.latest_seq() && self.log.can_backfill(q.since_seq, now) {
            let events = self.log.events_after(q.since_seq, now);
            if !events.is_empty() {
                self.counters.backfills_served += 1;
                ctx.count("membership", "backfills_served", 1);
                ctx.send_unicast(
                    q.from,
                    Message::Update(UpdateMsg {
                        origin: self.me,
                        events,
                    }),
                );
                return;
            }
        }
        self.counters.full_syncs_served += 1;
        ctx.count("membership", "full_syncs_served", 1);
        let records = self.directory.read(|d| d.snapshot());
        ctx.send_unicast(
            q.from,
            Message::SyncResponse(SyncResponse {
                from: self.me,
                latest_seq: self.log.latest_seq(),
                records,
            }),
        );
    }

    fn handle_sync_response(&mut self, ctx: &mut Context, r: &SyncResponse) {
        let fresh = self.apply_relayed_records(ctx, r.from, &r.records);
        self.seqs.advance(r.from, r.latest_seq);
        let levels = self.relay_levels_all();
        self.relay_events(ctx, fresh, levels);
        self.update_probe();
    }

    fn handle_election(&mut self, ctx: &mut Context, e: &ElectionMsg) {
        match *e {
            ElectionMsg::Election { from, level } => {
                if from == self.me {
                    return;
                }
                let Some(g) = self.groups.get_mut(level as usize).and_then(|g| g.as_mut()) else {
                    return;
                };
                g.heard(from, ctx.now(), false, 0);
                // Non-participation rule (§3.1.1): a node that already
                // follows a live leader at this level stays out of other
                // groups' elections on the same (channel, TTL) — in an
                // overlapping-group topology the candidate may simply be
                // unable to see our leader, and it must be allowed to win
                // its own group. The leader itself still objects.
                let follows_other_leader = g
                    .leader
                    .is_some_and(|l| l != self.me && g.peers.contains_key(&l));
                if follows_other_leader {
                    return;
                }
                if self.me < from {
                    // Objection: we outrank the candidate.
                    ctx.send_multicast(
                        self.cfg.channel(level),
                        self.cfg.ttl(level),
                        Message::Election(ElectionMsg::Alive {
                            from: self.me,
                            level,
                        }),
                    );
                    if self.am_leader(level) {
                        let backup = self.groups[level as usize].as_ref().unwrap().backup;
                        ctx.send_multicast(
                            self.cfg.channel(level),
                            self.cfg.ttl(level),
                            Message::Election(ElectionMsg::Coordinator {
                                from: self.me,
                                level,
                                backup,
                            }),
                        );
                    }
                } else {
                    // A lower-id candidate is running; stand down if we
                    // were one.
                    let g = self.groups[level as usize].as_mut().unwrap();
                    if matches!(g.election, Election::Candidate { .. }) {
                        g.election = Election::Idle;
                    }
                }
            }
            ElectionMsg::Alive { from, level } => {
                let Some(g) = self.groups.get_mut(level as usize).and_then(|g| g.as_mut()) else {
                    return;
                };
                g.heard(from, ctx.now(), false, 0);
                if from < self.me && matches!(g.election, Election::Candidate { .. }) {
                    g.election = Election::Idle;
                }
            }
            ElectionMsg::Coordinator {
                from,
                level,
                backup,
            } => {
                if from == self.me {
                    return;
                }
                let Some(g) = self.groups.get_mut(level as usize).and_then(|g| g.as_mut()) else {
                    return;
                };
                g.heard(from, ctx.now(), true, 0);
                let mut lost = false;
                match g.leader {
                    Some(l) if l == self.me => {
                        if from < self.me {
                            g.leader = Some(from);
                            g.backup = backup;
                            g.election = Election::Idle;
                            lost = true;
                        } else {
                            // We outrank the claimant; re-assert.
                            let my_backup = g.backup;
                            ctx.send_multicast(
                                self.cfg.channel(level),
                                self.cfg.ttl(level),
                                Message::Election(ElectionMsg::Coordinator {
                                    from: self.me,
                                    level,
                                    backup: my_backup,
                                }),
                            );
                        }
                    }
                    _ => {
                        g.leader = Some(from);
                        g.backup = backup;
                        g.election = Election::Idle;
                    }
                }
                if lost {
                    self.deactivate_above(ctx, level);
                }
                self.update_probe();
            }
        }
    }
}

impl Actor for MembershipNode {
    fn on_start(&mut self, ctx: &mut Context) {
        if self.crashed {
            // A restart loses all soft state; the incarnation bump makes
            // the rebirth unambiguous to everyone else.
            self.crashed = false;
            // The directory was already cleared in place by `on_crash`
            // (clearing rather than replacing keeps externally held
            // DirectoryClient handles attached, like re-initializing the
            // same shm segment after a daemon restart).
            self.seqs = SeqTracker::new();
            self.log = UpdateLog::with_max_age(
                self.cfg.piggyback_window,
                self.cfg.effective_tombstone_ttl() / 2,
            );
            self.sync_polls.clear();
            self.suspicions.clear();
            self.refuted.clear();
            self.flap.clear();
            self.quarantine.clear();
            self.cuts.clear();
            self.cut_last_change = 0;
            for g in &mut self.groups {
                *g = None;
            }
        }
        self.incarnation += 1;
        self.rebuild_record();
        let me_rec = self.record.clone();
        let now = ctx.now();
        self.directory
            .update(|d| (d.apply_join(me_rec, Provenance::Local, now).changed(), ()));

        let ttl = self.cfg.effective_tombstone_ttl();
        self.directory.update(|d| {
            d.set_tombstone_ttl(ttl);
            (false, ())
        });

        self.activate_level(ctx, 0);
        let phase = ctx.jitter(self.cfg.startup_jitter);
        ctx.set_timer(phase + self.cfg.heartbeat_period, T_HEARTBEAT);
        ctx.set_timer(self.cfg.sweep_period, T_SWEEP);
        if self.cfg.anti_entropy_period > 0 {
            ctx.set_timer(phase + self.cfg.anti_entropy_period, T_DIGEST);
        }
        self.update_probe();
    }

    fn on_crash(&mut self) {
        self.crashed = true;
        // Model the process dying: its published directory vanishes with
        // it. Clear in place so externally held clients see it empty.
        self.directory.update(|d| {
            *d = tamp_directory::Directory::new();
            (true, ())
        });
    }

    fn on_packet(&mut self, ctx: &mut Context, meta: PacketMeta, msg: &Message) {
        match msg {
            Message::Heartbeat(hb) => self.handle_heartbeat(ctx, hb),
            Message::Update(u) => self.handle_update(ctx, meta, u),
            Message::DirectoryExchange(d) => self.handle_exchange(ctx, meta, d),
            Message::SyncRequest(q) => self.handle_sync_request(ctx, q),
            Message::SyncResponse(r) => self.handle_sync_response(ctx, r),
            Message::Election(e) => self.handle_election(ctx, e),
            Message::Digest(d) => self.handle_digest(ctx, meta, d),
            // Proxy / gossip / RPC traffic is handled by other actors.
            _ => {}
        }
    }

    /// Zero-copy receive: heartbeats — the overwhelming share of packets
    /// — and digests are read straight off the wire bytes; both funnel
    /// into the same generic handlers as the owned path, so the two
    /// codec modes cannot diverge. Everything else materializes once and
    /// takes the owned dispatch.
    fn on_packet_view(
        &mut self,
        ctx: &mut Context,
        meta: PacketMeta,
        view: &tamp_wire::MessageView<'_>,
    ) {
        if let Some(hb) = view.as_heartbeat() {
            self.handle_heartbeat_view(ctx, &hb);
        } else if let Some(d) = view.as_digest() {
            self.handle_digest_generic(ctx, meta, d.from, d.level, d.entries());
        } else {
            self.on_packet(ctx, meta, &view.to_owned());
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, token: u64) {
        let (kind, level) = token_kind(token);
        match kind {
            T_HEARTBEAT => {
                self.send_heartbeats(ctx);
                ctx.set_timer(self.cfg.heartbeat_period, T_HEARTBEAT);
            }
            T_SWEEP => {
                self.sweep(ctx);
                ctx.set_timer(self.cfg.sweep_period, T_SWEEP);
            }
            T_DIGEST => {
                self.send_digests(ctx);
                ctx.set_timer(self.cfg.anti_entropy_period, T_DIGEST);
            }
            T_ELECTION if self.groups.get(level as usize).is_some_and(|g| g.is_some()) => {
                self.start_or_progress_election(ctx, level);
                self.update_probe();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_encoding_roundtrip() {
        for level in [0u8, 1, 3, 255] {
            let t = election_token(level);
            assert_eq!(token_kind(t), (T_ELECTION, level));
        }
        assert_eq!(token_kind(T_HEARTBEAT), (T_HEARTBEAT, 0));
    }

    #[test]
    fn node_exposes_client_and_probe() {
        let node = MembershipNode::new(NodeId(4), MembershipConfig::default());
        assert_eq!(node.id(), NodeId(4));
        let c = node.directory_client();
        assert_eq!(c.member_count(), 0, "empty before start");
        let p = node.probe();
        assert_eq!(p.lock().incarnation, 0);
    }

    #[test]
    fn register_service_and_update_value_rebuild_record() {
        let mut node = MembershipNode::new(NodeId(1), MembershipConfig::default());
        node.register_service(tamp_wire::ServiceDecl::new(
            "cache",
            tamp_wire::PartitionSet::from_iter([1]),
        ));
        node.update_value("load", "0.3");
        assert!(node.record.services.iter().any(|s| s.name == "cache"));
        assert!(node
            .record
            .attrs
            .iter()
            .any(|(k, v)| k == "load" && v == "0.3"));
        node.update_value("load", "0.9");
        assert_eq!(
            node.record
                .attrs
                .iter()
                .filter(|(k, _)| k == "load")
                .count(),
            1,
            "update_value must replace, not append"
        );
        node.delete_value("load");
        assert!(!node.record.attrs.iter().any(|(k, _)| k == "load"));
    }

    #[test]
    fn heartbeat_is_padded_to_paper_size() {
        let cfg = MembershipConfig::default();
        let node = MembershipNode::new(NodeId(1), cfg);
        let msg = Message::Heartbeat(Heartbeat {
            from: node.me,
            level: 0,
            seq: 1,
            is_leader: false,
            backup: None,
            latest_update_seq: 0,
            record: node.record.clone(),
        });
        assert_eq!(tamp_wire::codec::encoded_len(&msg), 228);
    }

    #[test]
    fn level_of_channel_maps_back() {
        let node = MembershipNode::new(NodeId(1), MembershipConfig::default());
        assert_eq!(node.level_of_channel(ChannelId(0)), Some(0));
        assert_eq!(node.level_of_channel(ChannelId(3)), Some(3));
        assert_eq!(node.level_of_channel(ChannelId(9)), None);
    }

    #[test]
    fn relay_levels_excludes_arrival_and_respects_roles() {
        let mut node = MembershipNode::new(NodeId(1), MembershipConfig::default());
        // Manually wire: active at 0 (member), 1 (leader of 0), leader at 1 too.
        node.groups[0] = Some(GroupState::new(0, 0));
        node.groups[0].as_mut().unwrap().leader = Some(NodeId(1));
        node.groups[1] = Some(GroupState::new(1, 0));
        node.groups[1].as_mut().unwrap().leader = Some(NodeId(0));
        // Event arrived at level 1: relay into level 0 (we lead it), not
        // level 1 (arrival), nothing above.
        assert_eq!(node.relay_levels(1), vec![0]);
        // Event arrived at level 0: we lead level 0? yes (but arrival) —
        // relay upward into level 1.
        assert_eq!(node.relay_levels(0), vec![1]);
    }
}
