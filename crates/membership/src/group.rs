//! Per-level group state: peers, leadership, and election bookkeeping.
//!
//! A node holds one [`GroupState`] per membership level it participates
//! in: level 0 always, level `k+1` exactly while it is the leader at
//! level `k`. The state is this node's *local view* of "the group on
//! channel `base + level` reachable within TTL `level + 1`" — overlapping
//! groups in non-transitive topologies (paper Fig. 4) need no special
//! representation because each node only ever sees the members within its
//! own TTL horizon.

use tamp_topology::Nanos;
use tamp_wire::NodeId;

use std::collections::BTreeMap;

/// What we know about one peer heard on a group channel.
#[derive(Debug, Clone, Copy)]
pub struct PeerState {
    /// Last time any packet from this peer arrived on this channel.
    pub last_heard: Nanos,
    /// Whether its latest heartbeat carried the leader flag.
    pub claims_leader: bool,
    /// The node's record incarnation as of the last heartbeat.
    pub incarnation: u64,
    /// EWMA of inter-arrival times (ns) — feeds the adaptive failure
    /// detector. 0 until two arrivals have been seen.
    pub ewma_interval: f64,
    /// EWMA of squared deviation from `ewma_interval`.
    pub ewma_var: f64,
    /// Last *heartbeat* arrival (cadence reference; `last_heard` also
    /// counts control traffic).
    pub last_heartbeat: Nanos,
}

/// EWMA smoothing factor for inter-arrival tracking (TCP-RTT-style).
const EWMA_ALPHA: f64 = 0.125;

impl PeerState {
    /// Adaptive failure timeout for this peer: `max_loss` expected
    /// inter-arrivals plus a 4-sigma safety margin. Falls back to
    /// `fallback` until enough samples exist. Under packet loss the
    /// observed inter-arrivals stretch, so the timeout stretches with
    /// them — no operator retuning of MAX_LOSS required (extension over
    /// the paper; ablation A7).
    pub fn adaptive_timeout(&self, max_loss: u32, fallback: Nanos) -> Nanos {
        if self.ewma_interval <= 0.0 {
            return fallback;
        }
        let t = max_loss as f64 * self.ewma_interval + 4.0 * self.ewma_var.sqrt();
        (t as Nanos).max(fallback / 2)
    }
}

/// Election progress within one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Election {
    /// No election in progress.
    Idle,
    /// We noticed the leader (and backup) are gone; waiting out
    /// `backup_grace` for the backup's takeover before we act.
    AwaitingBackup { deadline: Nanos },
    /// We multicast `Election` and are waiting for an objection from a
    /// lower-id node or a rival `Coordinator` until `deadline`.
    Candidate { deadline: Nanos },
}

/// This node's view of one membership group.
#[derive(Debug, Clone)]
pub struct GroupState {
    pub level: u8,
    /// Peers currently heard on this channel (not including ourselves),
    /// ordered by id for deterministic iteration.
    pub peers: BTreeMap<NodeId, PeerState>,
    /// Current believed leader (may be ourselves).
    pub leader: Option<NodeId>,
    /// Backup designated by the current leader.
    pub backup: Option<NodeId>,
    pub election: Election,
    /// When we joined this channel (listen period reference).
    pub joined_at: Nanos,
    /// Heartbeat sequence for our own beats on this channel.
    pub hb_seq: u64,
    /// Whether we have pulled the directory from this group's leader yet.
    pub bootstrapped: bool,
    /// When we last sent a bootstrap request (for lossy-network retry).
    pub last_bootstrap_attempt: Nanos,
}

impl GroupState {
    pub fn new(level: u8, now: Nanos) -> Self {
        GroupState {
            level,
            peers: BTreeMap::new(),
            leader: None,
            backup: None,
            election: Election::Idle,
            joined_at: now,
            hb_seq: 0,
            bootstrapped: false,
            last_bootstrap_attempt: 0,
        }
    }

    /// Record a non-heartbeat packet from `peer`: refreshes liveness but
    /// not the cadence statistics (control traffic arrives irregularly
    /// and would corrupt the adaptive detector's inter-arrival model).
    pub fn heard(&mut self, peer: NodeId, now: Nanos, claims_leader: bool, incarnation: u64) {
        let e = self.peers.entry(peer).or_insert(PeerState {
            last_heard: now,
            claims_leader,
            incarnation,
            ewma_interval: 0.0,
            ewma_var: 0.0,
            last_heartbeat: 0,
        });
        e.last_heard = e.last_heard.max(now);
        // Control traffic can only *assert* leadership (a Coordinator),
        // never silently retract it — elections and digests pass `false`
        // here and must not stomp the flag a heartbeat set; only the
        // next heartbeat (the authoritative periodic signal) may clear it.
        e.claims_leader = e.claims_leader || claims_leader;
        e.incarnation = e.incarnation.max(incarnation);
    }

    /// Record a *heartbeat* from `peer`: refreshes liveness and feeds
    /// the adaptive detector's inter-arrival EWMA (heartbeats are the
    /// only periodic signal).
    pub fn heard_heartbeat(
        &mut self,
        peer: NodeId,
        now: Nanos,
        claims_leader: bool,
        incarnation: u64,
    ) {
        let e = self.peers.entry(peer).or_insert(PeerState {
            last_heard: now,
            claims_leader,
            incarnation,
            ewma_interval: 0.0,
            ewma_var: 0.0,
            last_heartbeat: 0,
        });
        if e.last_heartbeat > 0 && now > e.last_heartbeat {
            let interval = (now - e.last_heartbeat) as f64;
            if e.ewma_interval <= 0.0 {
                e.ewma_interval = interval;
            } else {
                let dev = (interval - e.ewma_interval).abs();
                e.ewma_var = (1.0 - EWMA_ALPHA) * e.ewma_var + EWMA_ALPHA * dev * dev;
                e.ewma_interval = (1.0 - EWMA_ALPHA) * e.ewma_interval + EWMA_ALPHA * interval;
            }
        }
        if now > e.last_heartbeat {
            e.last_heartbeat = now;
        }
        e.last_heard = e.last_heard.max(now);
        e.claims_leader = claims_leader;
        e.incarnation = e.incarnation.max(incarnation);
    }

    /// Remove a peer; returns its last known state.
    pub fn remove_peer(&mut self, peer: NodeId) -> Option<PeerState> {
        if self.leader == Some(peer) {
            self.leader = None;
        }
        if self.backup == Some(peer) {
            self.backup = None;
        }
        self.peers.remove(&peer)
    }

    /// Peers whose last contact is older than `timeout` at `now`.
    pub fn expired_peers(&self, now: Nanos, timeout: Nanos) -> Vec<NodeId> {
        self.peers
            .iter()
            .filter(|(_, p)| now.saturating_sub(p.last_heard) >= timeout)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Like [`GroupState::expired_peers`], but each peer gets its own
    /// adaptive deadline (see [`PeerState::adaptive_timeout`]).
    pub fn expired_peers_adaptive(
        &self,
        now: Nanos,
        max_loss: u32,
        fallback: Nanos,
    ) -> Vec<NodeId> {
        self.peers
            .iter()
            .filter(|(_, p)| {
                now.saturating_sub(p.last_heard) >= p.adaptive_timeout(max_loss, fallback)
            })
            .map(|(&n, _)| n)
            .collect()
    }

    /// True if `me` has the lowest id among `me` and all live peers —
    /// the bully winner-to-be.
    pub fn am_lowest(&self, me: NodeId) -> bool {
        self.peers.keys().all(|&p| me < p)
    }

    /// Lowest-id peer currently claiming leadership, if any.
    pub fn claimed_leader(&self) -> Option<NodeId> {
        self.peers
            .iter()
            .filter(|(_, p)| p.claims_leader)
            .map(|(&n, _)| n)
            .min()
    }

    /// Is the believed leader actually present (or us)?
    pub fn leader_present(&self, me: NodeId) -> bool {
        match self.leader {
            None => false,
            Some(l) => l == me || self.peers.contains_key(&l),
        }
    }

    /// Pick a backup deterministically-pseudorandomly: the peer whose id
    /// hashes lowest with `salt`. The paper picks a random member; using a
    /// salted hash keeps simulation runs reproducible while still
    /// spreading the choice.
    pub fn pick_backup(&self, salt: u64) -> Option<NodeId> {
        self.peers
            .keys()
            .min_by_key(|n| {
                let x = (n.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt;
                x.rotate_left(17).wrapping_mul(0xbf58_476d_1ce4_e5b9)
            })
            .copied()
    }

    /// Members (peers + us) count.
    pub fn size_with_me(&self) -> usize {
        self.peers.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> GroupState {
        GroupState::new(0, 0)
    }

    #[test]
    fn heard_inserts_and_refreshes() {
        let mut s = g();
        s.heard(NodeId(5), 10, false, 1);
        s.heard(NodeId(5), 20, true, 1);
        let p = s.peers[&NodeId(5)];
        assert_eq!(p.last_heard, 20);
        assert!(p.claims_leader);
    }

    #[test]
    fn heard_never_regresses_time_or_incarnation() {
        let mut s = g();
        s.heard(NodeId(5), 20, false, 3);
        s.heard(NodeId(5), 10, false, 2);
        let p = s.peers[&NodeId(5)];
        assert_eq!(p.last_heard, 20);
        assert_eq!(p.incarnation, 3);
    }

    #[test]
    fn expired_peers_respects_timeout() {
        let mut s = g();
        s.heard(NodeId(1), 0, false, 1);
        s.heard(NodeId(2), 90, false, 1);
        assert_eq!(s.expired_peers(100, 50), vec![NodeId(1)]);
        assert!(s.expired_peers(100, 200).is_empty());
    }

    #[test]
    fn remove_peer_clears_roles() {
        let mut s = g();
        s.heard(NodeId(1), 0, true, 1);
        s.heard(NodeId(2), 0, false, 1);
        s.leader = Some(NodeId(1));
        s.backup = Some(NodeId(2));
        s.remove_peer(NodeId(1));
        assert_eq!(s.leader, None);
        assert_eq!(s.backup, Some(NodeId(2)));
        s.remove_peer(NodeId(2));
        assert_eq!(s.backup, None);
    }

    #[test]
    fn am_lowest_and_claimed_leader() {
        let mut s = g();
        assert!(s.am_lowest(NodeId(9)), "alone means lowest");
        s.heard(NodeId(3), 0, false, 1);
        s.heard(NodeId(7), 0, true, 1);
        assert!(s.am_lowest(NodeId(2)));
        assert!(!s.am_lowest(NodeId(5)));
        assert_eq!(s.claimed_leader(), Some(NodeId(7)));
    }

    #[test]
    fn leader_present_logic() {
        let mut s = g();
        let me = NodeId(0);
        assert!(!s.leader_present(me));
        s.leader = Some(me);
        assert!(s.leader_present(me));
        s.leader = Some(NodeId(4));
        assert!(!s.leader_present(me), "leader not among peers");
        s.heard(NodeId(4), 0, true, 1);
        assert!(s.leader_present(me));
    }

    #[test]
    fn pick_backup_is_deterministic_and_salt_sensitive() {
        let mut s = g();
        for i in 1..=10 {
            s.heard(NodeId(i), 0, false, 1);
        }
        let a = s.pick_backup(42).unwrap();
        let b = s.pick_backup(42).unwrap();
        assert_eq!(a, b);
        // Different salts should usually pick different peers; check a few.
        let picks: std::collections::HashSet<_> = (0..20u64)
            .map(|salt| s.pick_backup(salt).unwrap())
            .collect();
        assert!(picks.len() > 1, "backup choice never varies");
        assert!(s.pick_backup(0).is_some());
        assert_eq!(g().pick_backup(7), None);
    }
}
