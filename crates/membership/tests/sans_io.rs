//! Sans-io handler tests: drive a single `MembershipNode` with crafted
//! packets and inspect the effects it emits — no simulator, no peers,
//! pure protocol-rule checks.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tamp_membership::{MembershipConfig, MembershipNode};
use tamp_netsim::{collect_effects, Actor, ChannelId, Destination, Effect, PacketMeta, SECS};
use tamp_topology::HostId;
use tamp_wire::{
    DirectoryExchange, ElectionMsg, Heartbeat, MemberEvent, Message, NodeId, NodeRecord, SeqEvent,
    SyncRequest, UpdateMsg,
};

struct Harness {
    node: MembershipNode,
    rng: StdRng,
    host: HostId,
}

impl Harness {
    fn new(id: u32) -> Self {
        let mut h = Harness {
            node: MembershipNode::new(NodeId(id), MembershipConfig::default()),
            rng: StdRng::seed_from_u64(7),
            host: HostId(id),
        };
        let _ = h.start(0);
        h
    }

    fn start(&mut self, now: u64) -> Vec<Effect> {
        let (node, host, rng) = (&mut self.node, self.host, &mut self.rng);
        collect_effects(now, host, rng, |ctx| node.on_start(ctx))
    }

    fn packet(&mut self, now: u64, meta: PacketMeta, msg: Message) -> Vec<Effect> {
        let (node, host, rng) = (&mut self.node, self.host, &mut self.rng);
        collect_effects(now, host, rng, |ctx| node.on_packet(ctx, meta, &msg))
    }

    fn timer(&mut self, now: u64, token: u64) -> Vec<Effect> {
        let (node, host, rng) = (&mut self.node, self.host, &mut self.rng);
        collect_effects(now, host, rng, |ctx| node.on_timer(ctx, token))
    }

    /// Run the sweep timer (token 2 in the node's scheme).
    fn sweep(&mut self, now: u64) -> Vec<Effect> {
        self.timer(now, 2)
    }
}

fn hb(from: u32, level: u8, is_leader: bool, latest: u64) -> (PacketMeta, Message) {
    let rec = NodeRecord::new(NodeId(from), 1);
    (
        PacketMeta::multicast(HostId(from), ChannelId(level as u16), level + 1, 228),
        Message::Heartbeat(Heartbeat {
            from: NodeId(from),
            level,
            seq: 1,
            is_leader,
            backup: None,
            latest_update_seq: latest,
            record: rec,
        }),
    )
}

fn sends_of(effects: &[Effect]) -> Vec<(&Destination, &Message)> {
    effects
        .iter()
        .filter_map(|e| match e {
            Effect::Send { dest, msg } => Some((dest, msg)),
            _ => None,
        })
        .collect()
}

#[test]
fn start_subscribes_level_zero_and_arms_timers() {
    let mut h = Harness {
        node: MembershipNode::new(NodeId(3), MembershipConfig::default()),
        rng: StdRng::seed_from_u64(7),
        host: HostId(3),
    };
    let effects = h.start(0);
    assert!(effects
        .iter()
        .any(|e| matches!(e, Effect::Subscribe(ChannelId(0)))));
    let timers = effects
        .iter()
        .filter(|e| matches!(e, Effect::SetTimer { .. }))
        .count();
    assert!(timers >= 2, "heartbeat + sweep timers expected");
    // Own record in directory immediately.
    assert_eq!(h.node.directory_client().member_count(), 1);
}

#[test]
fn leader_heartbeat_triggers_bootstrap_pull() {
    let mut h = Harness::new(5);
    let (meta, msg) = hb(2, 0, true, 0);
    let effects = h.packet(SECS, meta, msg);
    let sends = sends_of(&effects);
    let exchange = sends.iter().find_map(|(d, m)| match m {
        Message::DirectoryExchange(x) => Some((d, x)),
        _ => None,
    });
    let (dest, x) = exchange.expect("no bootstrap exchange sent");
    assert!(matches!(dest, Destination::Unicast(h) if h.0 == 2));
    assert!(x.reply_wanted, "bootstrap must request the reply");
    assert_eq!(x.from, NodeId(5));
}

#[test]
fn non_leader_heartbeat_does_not_bootstrap() {
    let mut h = Harness::new(5);
    let (meta, msg) = hb(2, 0, false, 0);
    let effects = h.packet(SECS, meta, msg);
    assert!(
        !sends_of(&effects)
            .iter()
            .any(|(_, m)| matches!(m, Message::DirectoryExchange(_))),
        "bootstrapped from a non-leader"
    );
    // But the peer's record landed.
    assert!(h.node.directory_client().is_alive(NodeId(2)));
}

#[test]
fn advertised_update_gap_triggers_sync_poll() {
    let mut h = Harness::new(5);
    let (meta, msg) = hb(2, 0, false, 7); // peer claims 7 updates; we have 0
    let effects = h.packet(SECS, meta, msg);
    let polled = sends_of(&effects).iter().any(|(d, m)| {
        matches!(m, Message::SyncRequest(q) if q.from == NodeId(5) && q.since_seq == 0)
            && matches!(d, Destination::Unicast(hh) if hh.0 == 2)
    });
    assert!(polled, "no sync poll for the advertised gap");
}

#[test]
fn lower_id_objects_to_election() {
    let mut h = Harness::new(1);
    let effects = h.packet(
        SECS,
        PacketMeta::multicast(HostId(9), ChannelId(0), 1, 20),
        Message::Election(ElectionMsg::Election {
            from: NodeId(9),
            level: 0,
        }),
    );
    let objected = sends_of(&effects)
        .iter()
        .any(|(_, m)| matches!(m, Message::Election(ElectionMsg::Alive { from, .. }) if *from == NodeId(1)));
    assert!(objected, "node 1 must bully node 9's candidacy");
}

#[test]
fn higher_id_stays_silent_on_election() {
    let mut h = Harness::new(9);
    let effects = h.packet(
        SECS,
        PacketMeta::multicast(HostId(1), ChannelId(0), 1, 20),
        Message::Election(ElectionMsg::Election {
            from: NodeId(1),
            level: 0,
        }),
    );
    assert!(
        sends_of(&effects).is_empty(),
        "higher id should defer to the lower candidate"
    );
}

#[test]
fn follower_of_live_leader_does_not_participate() {
    // Paper §3.1.1 non-participation: we follow leader 0; candidate 7
    // (who cannot see 0) must get no objection from us even though our
    // id is lower than 7.
    let mut h = Harness::new(3);
    let (meta, msg) = hb(0, 0, true, 0);
    h.packet(SECS, meta, msg); // adopt 0 as leader
    let effects = h.packet(
        2 * SECS,
        PacketMeta::multicast(HostId(7), ChannelId(0), 1, 20),
        Message::Election(ElectionMsg::Election {
            from: NodeId(7),
            level: 0,
        }),
    );
    assert!(
        !sends_of(&effects)
            .iter()
            .any(|(_, m)| matches!(m, Message::Election(ElectionMsg::Alive { .. }))),
        "followers must stay out of other groups' elections"
    );
}

#[test]
fn coordinator_conflict_resolves_to_lower_id() {
    // Become leader (alone): sweep after the listen period.
    let mut h = Harness::new(4);
    let effects = h.sweep(3 * SECS);
    let claimed = sends_of(&effects)
        .iter()
        .any(|(_, m)| matches!(m, Message::Election(ElectionMsg::Coordinator { from, .. }) if *from == NodeId(4)));
    assert!(claimed, "lone node must claim leadership after listening");

    // A higher-id coordinator appears: we re-assert.
    let effects = h.packet(
        4 * SECS,
        PacketMeta::multicast(HostId(8), ChannelId(0), 1, 20),
        Message::Election(ElectionMsg::Coordinator {
            from: NodeId(8),
            level: 0,
            backup: None,
        }),
    );
    let reasserted = sends_of(&effects)
        .iter()
        .any(|(_, m)| matches!(m, Message::Election(ElectionMsg::Coordinator { from, .. }) if *from == NodeId(4)));
    assert!(reasserted, "lower-id incumbent must re-assert");

    // A lower-id coordinator appears: we abdicate (no re-assert, level-1
    // group dropped).
    let effects = h.packet(
        5 * SECS,
        PacketMeta::multicast(HostId(2), ChannelId(0), 1, 20),
        Message::Election(ElectionMsg::Coordinator {
            from: NodeId(2),
            level: 0,
            backup: None,
        }),
    );
    assert!(
        !sends_of(&effects)
            .iter()
            .any(|(_, m)| matches!(m, Message::Election(ElectionMsg::Coordinator { from, .. }) if *from == NodeId(4))),
        "must abdicate to the lower id"
    );
    assert!(
        effects
            .iter()
            .any(|e| matches!(e, Effect::Unsubscribe(ChannelId(1)))),
        "abdication must leave the higher level"
    );
    let probe = h.node.probe();
    assert_eq!(probe.lock().leaders[0], Some(NodeId(2)));
}

#[test]
fn leave_of_self_is_refuted_with_new_incarnation() {
    let mut h = Harness::new(6);
    let before = h.node.probe().lock().incarnation;
    let effects = h.packet(
        SECS,
        PacketMeta::multicast(HostId(2), ChannelId(0), 1, 64),
        Message::Update(UpdateMsg {
            origin: NodeId(2),
            events: vec![SeqEvent {
                seq: 1,
                event: MemberEvent::Leave(NodeId(6), before),
            }],
        }),
    );
    let after = h.node.probe().lock().incarnation;
    assert_eq!(after, before + 1, "refutation must bump the incarnation");
    // And we immediately re-announce ourselves.
    let heartbeated = sends_of(&effects)
        .iter()
        .any(|(_, m)| matches!(m, Message::Heartbeat(x) if x.record.incarnation == after));
    assert!(heartbeated, "no refutation heartbeat");
    assert!(h.node.directory_client().is_alive(NodeId(6)));
}

#[test]
fn sync_request_backfills_from_window_or_ships_snapshot() {
    let mut h = Harness::new(0);
    // Learn two peers so the directory and (via relays as sole leader...
    // not leader yet) — instead exercise the *snapshot* path first: we
    // have no log, requester asks since 0 → full snapshot.
    let (meta, msg) = hb(3, 0, false, 0);
    h.packet(SECS, meta, msg);
    let effects = h.packet(
        2 * SECS,
        PacketMeta::unicast(HostId(3), 41),
        Message::SyncRequest(SyncRequest {
            from: NodeId(3),
            since_seq: 0,
        }),
    );
    let snapshot = sends_of(&effects).iter().any(
        |(_, m)| matches!(m, Message::SyncResponse(r) if r.records.len() == 2), // us + peer 3
    );
    assert!(snapshot, "expected a full snapshot response");
}

#[test]
fn exchange_reply_completes_bootstrap_and_merges() {
    let mut h = Harness::new(5);
    // Adopt 2 as leader, triggering a bootstrap request.
    let (meta, msg) = hb(2, 0, true, 0);
    h.packet(SECS, meta, msg);
    // The unicast reply arrives with a third node's record.
    let reply = Message::DirectoryExchange(DirectoryExchange {
        from: NodeId(2),
        reply_wanted: false,
        latest_seq: 0,
        records: vec![tamp_wire::RelayedRecord {
            record: NodeRecord::new(NodeId(9), 1),
            relayed_by: None,
        }],
    });
    h.packet(SECS + 1, PacketMeta::unicast(HostId(2), 300), reply);
    assert!(h.node.directory_client().is_alive(NodeId(9)));
    // No further bootstrap requests on later leader heartbeats.
    let (meta, msg) = hb(2, 0, true, 0);
    let effects = h.packet(4 * SECS, meta, msg);
    assert!(
        !sends_of(&effects)
            .iter()
            .any(|(_, m)| matches!(m, Message::DirectoryExchange(x) if x.reply_wanted)),
        "bootstrap must latch after the reply"
    );
}
