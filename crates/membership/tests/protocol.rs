//! End-to-end protocol tests: whole clusters of `MembershipNode`s running
//! in the discrete-event simulator.

use tamp_directory::DirectoryClient;
use tamp_membership::{MembershipConfig, MembershipNode, Probe};
use tamp_netsim::{Control, Engine, EngineConfig, LossModel, SECS};
use tamp_topology::{generators, HostId, Topology};
use tamp_wire::{NodeId, PartitionSet, ServiceDecl};

struct Cluster {
    engine: Engine,
    clients: Vec<DirectoryClient>,
    probes: Vec<Probe>,
}

fn build_cluster(topo: Topology, cfg: &MembershipConfig, seed: u64) -> Cluster {
    build_cluster_with(topo, cfg, seed, EngineConfig::default())
}

fn build_cluster_with(
    topo: Topology,
    cfg: &MembershipConfig,
    seed: u64,
    engine_cfg: EngineConfig,
) -> Cluster {
    let mut engine = Engine::new(topo, engine_cfg, seed);
    let mut clients = Vec::new();
    let mut probes = Vec::new();
    for h in engine.hosts() {
        let mut node_cfg = cfg.clone();
        node_cfg.services = vec![ServiceDecl::new(
            "svc",
            PartitionSet::from_iter([(h.0 % 4) as u16]),
        )];
        let node = MembershipNode::new(NodeId(h.0), node_cfg);
        clients.push(node.directory_client());
        probes.push(node.probe());
        engine.add_actor(h, Box::new(node));
    }
    engine.start();
    Cluster {
        engine,
        clients,
        probes,
    }
}

fn assert_full_views(c: &Cluster, expected: usize, ctx_msg: &str) {
    for (i, cl) in c.clients.iter().enumerate() {
        if !c.engine.is_alive(HostId(i as u32)) {
            continue;
        }
        assert_eq!(
            cl.member_count(),
            expected,
            "{ctx_msg}: node {i} sees {} of {} members; probe: {:?}",
            cl.member_count(),
            expected,
            c.probes[i].lock().clone(),
        );
    }
}

#[test]
fn single_segment_converges_to_full_view() {
    let cfg = MembershipConfig::default();
    let mut c = build_cluster(generators::single_segment(8), &cfg, 11);
    c.engine.run_until(15 * SECS);
    assert_full_views(&c, 8, "single segment");
    // Exactly one leader at level 0, and it is the lowest id.
    let leaders: Vec<_> = c
        .probes
        .iter()
        .map(|p| p.lock().leaders.first().cloned().flatten())
        .collect();
    assert!(leaders.iter().all(|l| *l == Some(NodeId(0))), "{leaders:?}");
}

#[test]
fn two_segments_converge_via_leader_tree() {
    let cfg = MembershipConfig::default();
    let mut c = build_cluster(generators::star_of_segments(2, 5), &cfg, 13);
    c.engine.run_until(25 * SECS);
    assert_full_views(&c, 10, "two segments");
}

#[test]
fn five_networks_of_twenty_like_the_paper() {
    // The paper's 100-node testbed shape.
    let cfg = MembershipConfig::default();
    let mut c = build_cluster(generators::star_of_segments(5, 20), &cfg, 17);
    c.engine.run_until(30 * SECS);
    assert_full_views(&c, 100, "paper testbed");
}

#[test]
fn leaf_failure_detected_within_timeout_everywhere() {
    let cfg = MembershipConfig::default();
    let mut c = build_cluster(generators::star_of_segments(2, 5), &cfg, 19);
    c.engine.run_until(25 * SECS);
    assert_full_views(&c, 10, "pre-kill");

    // Kill a non-leader leaf (highest id in segment 1).
    let victim = HostId(9);
    let kill_at = 25 * SECS;
    c.engine.schedule(kill_at, Control::Kill(victim));
    c.engine.run_until(60 * SECS);
    assert_full_views(&c, 9, "post-kill");

    let first = c.engine.stats().first_removal(NodeId(9)).unwrap();
    let last = c.engine.stats().last_removal(NodeId(9)).unwrap();
    let detect = first - kill_at;
    let converge = last - kill_at;
    // Detection ≈ max_loss × period = 5 s (+ sweep granularity + phase).
    assert!(
        (4 * SECS..=8 * SECS).contains(&detect),
        "detection took {}ms",
        detect / 1_000_000
    );
    assert!(
        converge <= 12 * SECS,
        "convergence took {}ms",
        converge / 1_000_000
    );
    // Every surviving node observed the removal.
    let observers = c.engine.stats().removal_observers(NodeId(9));
    assert!(observers.len() >= 9, "only {observers:?} observed");
}

#[test]
fn group_leader_failure_recovers_with_backup() {
    let cfg = MembershipConfig::default();
    let mut c = build_cluster(generators::star_of_segments(2, 5), &cfg, 23);
    c.engine.run_until(25 * SECS);

    // Node 0 is the level-0 leader of segment 0 (lowest id) and by
    // construction also the level-1 leader.
    let victim = HostId(0);
    c.engine.schedule(25 * SECS, Control::Kill(victim));
    c.engine.run_until(70 * SECS);
    assert_full_views(&c, 9, "post-leader-kill");

    // Someone else now leads segment 0's level-0 group — the designated
    // backup takes over (paper §3.1.1), and sticky leadership keeps it
    // even if a lower id survives. All segment-0 members must agree.
    let leader_of_1 = c.probes[1].lock().leaders.first().cloned().flatten();
    let new_leader = leader_of_1.expect("segment 0 must re-elect a leader");
    assert!(
        (1..5).contains(&new_leader.0),
        "new leader {new_leader:?} must be a surviving segment-0 member"
    );
    for i in 1..5 {
        let l = c.probes[i].lock().leaders.first().cloned().flatten();
        assert_eq!(l, Some(new_leader), "node {i} disagrees on the leader");
    }
}

#[test]
fn rejoin_after_crash_is_readded_with_higher_incarnation() {
    let cfg = MembershipConfig::default();
    let mut c = build_cluster(generators::star_of_segments(2, 3), &cfg, 29);
    c.engine.run_until(20 * SECS);
    assert_full_views(&c, 6, "initial");

    let victim = HostId(5);
    c.engine.schedule(20 * SECS, Control::Kill(victim));
    c.engine.schedule(40 * SECS, Control::Revive(victim));
    c.engine.run_until(80 * SECS);
    assert_full_views(&c, 6, "after rejoin");
    assert!(c.probes[5].lock().incarnation >= 2);
    // The rejoin was observed cluster-wide.
    let adds = c.engine.stats().addition_observers(NodeId(5));
    assert!(adds.len() >= 5, "addition seen by {adds:?}");
}

#[test]
fn converges_under_packet_loss() {
    let cfg = MembershipConfig::default();
    let engine_cfg = EngineConfig {
        loss: LossModel { rate: 0.05 },
        ..Default::default()
    };
    let mut c = build_cluster_with(generators::star_of_segments(3, 5), &cfg, 31, engine_cfg);
    c.engine.run_until(40 * SECS);
    assert_full_views(&c, 15, "5% loss");

    // Inject a failure under loss; it must still be detected everywhere.
    c.engine.schedule(40 * SECS, Control::Kill(HostId(14)));
    c.engine.run_until(90 * SECS);
    assert_full_views(&c, 14, "detection under loss");
}

#[test]
fn chain_topology_builds_multi_level_tree() {
    let cfg = MembershipConfig::default();
    let mut c = build_cluster(generators::chain_of_segments(3, 4), &cfg, 37);
    c.engine.run_until(40 * SECS);
    assert_full_views(&c, 12, "chain");
    // The level-0 leader of segment 0 participates above level 0.
    let p0 = c.probes[0].lock().clone();
    assert!(
        p0.active_levels.len() > 1,
        "node 0 should lead and join higher levels: {p0:?}"
    );
}

#[test]
fn non_transitive_topology_converges() {
    let cfg = MembershipConfig::default();
    let mut c = build_cluster(generators::non_transitive_triangle(), &cfg, 41);
    c.engine.run_until(40 * SECS);
    assert_full_views(&c, 3, "fig-4 triangle");
}

#[test]
fn partition_detected_and_healed() {
    use tamp_topology::SegmentId;
    let cfg = MembershipConfig::default();
    let mut c = build_cluster(generators::star_of_segments(2, 4), &cfg, 43);
    c.engine.run_until(25 * SECS);
    assert_full_views(&c, 8, "pre-partition");

    // Sever the two segments. Each side should shrink to its own 4.
    c.engine.schedule(
        25 * SECS,
        Control::BlockSegments(SegmentId(0), SegmentId(1)),
    );
    c.engine.run_until(60 * SECS);
    for i in 0..4 {
        assert_eq!(
            c.clients[i].member_count(),
            4,
            "node {i} should see only its side; probe {:?}",
            c.probes[i].lock().clone()
        );
    }
    for i in 4..8 {
        assert_eq!(c.clients[i].member_count(), 4, "node {i} other side");
    }

    // Heal; views must re-merge.
    c.engine.schedule(
        60 * SECS,
        Control::UnblockSegments(SegmentId(0), SegmentId(1)),
    );
    c.engine.run_until(110 * SECS);
    assert_full_views(&c, 8, "post-heal");
}

#[test]
fn directory_lookup_spans_cluster() {
    let cfg = MembershipConfig::default();
    let mut c = build_cluster(generators::star_of_segments(2, 4), &cfg, 47);
    c.engine.run_until(25 * SECS);
    // Every node exports "svc" with partition h % 4; from any client, a
    // lookup for partition 2 must find exactly the two matching hosts.
    let m = c.clients[0].lookup_service("svc", "2").unwrap();
    assert_eq!(m.len(), 2);
    assert!(m.iter().all(|m| m.node.0 % 4 == 2));
}

#[test]
fn deterministic_simulation() {
    fn run(seed: u64) -> Vec<usize> {
        let cfg = MembershipConfig::default();
        let mut c = build_cluster(generators::star_of_segments(2, 5), &cfg, seed);
        c.engine.schedule(20 * SECS, Control::Kill(HostId(3)));
        c.engine.run_until(45 * SECS);
        c.clients.iter().map(|c| c.member_count()).collect()
    }
    assert_eq!(run(99), run(99));
}

#[test]
fn runtime_service_commands_propagate() {
    use tamp_membership::ServiceCommand;
    let topo = generators::star_of_segments(2, 3);
    let mut engine = Engine::new(topo, EngineConfig::default(), 53);
    let mut clients = Vec::new();
    let mut controls = Vec::new();
    for h in engine.hosts() {
        let node = MembershipNode::new(NodeId(h.0), MembershipConfig::default());
        clients.push(node.directory_client());
        controls.push(node.control_handle());
        engine.add_actor(h, Box::new(node));
    }
    engine.start();
    engine.run_until(20 * SECS);
    assert_eq!(clients[0].member_count(), 6);
    assert!(clients[0].lookup_service("late", "").unwrap().is_empty());

    // Node 5 (different segment from node 0) registers a service and a
    // status value *while running* — the paper's update_value flow.
    controls[5]
        .lock()
        .push(ServiceCommand::Register(ServiceDecl::new(
            "late",
            PartitionSet::from_iter([7]),
        )));
    controls[5]
        .lock()
        .push(ServiceCommand::UpdateValue("ready".into(), "yes".into()));
    engine.run_until(30 * SECS);

    // Every node across segments sees the new service + value.
    for (i, c) in clients.iter().enumerate() {
        let m = c.lookup_service("late", "7").unwrap();
        assert_eq!(m.len(), 1, "node {i} missing runtime service");
        assert_eq!(m[0].node, NodeId(5));
        assert!(m[0].attrs.iter().any(|(k, v)| k == "ready" && v == "yes"));
    }

    // And deletion propagates too.
    controls[5]
        .lock()
        .push(ServiceCommand::Unregister("late".into()));
    engine.run_until(40 * SECS);
    for (i, c) in clients.iter().enumerate() {
        assert!(
            c.lookup_service("late", "").unwrap().is_empty(),
            "node {i} still lists the unregistered service"
        );
    }
}

#[test]
fn fat_tree_topology_converges() {
    // Deeper fabric: 2 pods x 2 segments, inter-pod TTL distance 4.
    let cfg = MembershipConfig::default();
    let mut c = build_cluster(generators::fat_tree(2, 2, 2, 4), &cfg, 59);
    c.engine.run_until(40 * SECS);
    assert_full_views(&c, 16, "fat tree");
}

#[test]
fn overlapping_chain_groups_bridge_knowledge_at_low_max_ttl() {
    // A chain of segments each TTL-2 from its neighbor: with MAX_TTL = 2
    // the level-1 groups *overlap* along the chain (the paper's §3.1.1
    // general-topology case), and knowledge still bridges end to end
    // through the shared members.
    let cfg = MembershipConfig {
        max_ttl: 2,
        ..Default::default()
    };
    let mut c = build_cluster(generators::chain_of_segments(4, 2), &cfg, 61);
    c.engine.run_until(60 * SECS);
    assert_full_views(&c, 8, "overlapping chain");
}

#[test]
fn max_ttl_caps_reach_with_no_bridge() {
    // Two segments separated by three routers (TTL distance 4) and no
    // hosts in between: with MAX_TTL = 2 no multicast group can span the
    // gap and there is no overlap to bridge it — views stay partitioned,
    // predictably (a misconfigured MAX_TTL degrades, not crashes).
    use tamp_topology::TopologyBuilder;
    let mut b = TopologyBuilder::new();
    let s0 = b.add_segment();
    let s1 = b.add_segment();
    let (r0, r1, r2) = (b.add_router(), b.add_router(), b.add_router());
    b.link_segment_router(s0, r0, None);
    b.link_routers(r0, r1, None);
    b.link_routers(r1, r2, None);
    b.link_segment_router(s1, r2, None);
    b.add_hosts(s0, 3);
    b.add_hosts(s1, 3);
    let topo = b.build();
    assert_eq!(topo.max_ttl(), 4);

    let cfg = MembershipConfig {
        max_ttl: 2,
        ..Default::default()
    };
    let mut c = build_cluster(topo.clone(), &cfg, 63);
    c.engine.run_until(40 * SECS);
    for (i, cl) in c.clients.iter().enumerate() {
        assert_eq!(cl.member_count(), 3, "node {i} must see only its side");
    }

    // With MAX_TTL = 4 the same topology converges fully.
    let cfg = MembershipConfig {
        max_ttl: 4,
        ..Default::default()
    };
    let mut c = build_cluster(topo, &cfg, 63);
    c.engine.run_until(40 * SECS);
    assert_full_views(&c, 6, "max_ttl=4 bridges the gap");
}

#[test]
fn cascading_leader_failures_still_converge() {
    // Kill the segment leader, then its replacement as soon as it takes
    // over, then the replacement's replacement: the election machinery
    // must grind through three successions.
    let cfg = MembershipConfig::default();
    let mut c = build_cluster(generators::star_of_segments(2, 5), &cfg, 67);
    c.engine.run_until(25 * SECS);
    assert_full_views(&c, 10, "pre-cascade");

    c.engine.schedule(25 * SECS, Control::Kill(HostId(0)));
    c.engine.schedule(40 * SECS, Control::Kill(HostId(1)));
    c.engine.schedule(55 * SECS, Control::Kill(HostId(2)));
    c.engine.run_until(110 * SECS);
    assert_full_views(&c, 7, "post-cascade");

    // Segment 0's survivors (3, 4) agree on a leader from {3, 4}.
    let l3 = c.probes[3].lock().leaders.first().cloned().flatten();
    let l4 = c.probes[4].lock().leaders.first().cloned().flatten();
    assert_eq!(l3, l4, "survivors disagree");
    assert!(matches!(l3, Some(NodeId(3)) | Some(NodeId(4))), "{l3:?}");
}

#[test]
fn staggered_mass_join_reaches_everyone() {
    // Nodes come up in waves (a rack being powered on): late joiners
    // must acquire the full directory and everyone must learn of them.
    let cfg = MembershipConfig::default();
    let topo = generators::star_of_segments(3, 4);
    let mut engine = Engine::new(topo, EngineConfig::default(), 71);
    let mut clients = Vec::new();
    for h in engine.hosts() {
        let node = MembershipNode::new(NodeId(h.0), cfg.clone());
        clients.push(node.directory_client());
        engine.add_actor(h, Box::new(node));
    }
    // Stagger: the engine starts everyone, but we immediately crash the
    // later waves and revive them over a minute.
    engine.start();
    for (i, h) in engine.hosts().into_iter().enumerate() {
        if i >= 4 {
            engine.kill_now(h);
            let wave = (i / 4) as u64;
            engine.schedule(wave * 25 * SECS, Control::Revive(h));
        }
    }
    engine.run_until(120 * SECS);
    for (i, cl) in clients.iter().enumerate() {
        assert_eq!(cl.member_count(), 12, "node {i} incomplete after waves");
    }
}

#[test]
fn graceful_leave_removes_immediately() {
    use tamp_membership::ServiceCommand;
    let cfg = MembershipConfig::default();
    let topo = generators::star_of_segments(2, 4);
    let mut engine = Engine::new(topo, EngineConfig::default(), 73);
    let mut clients = Vec::new();
    let mut controls = Vec::new();
    for h in engine.hosts() {
        let node = MembershipNode::new(NodeId(h.0), cfg.clone());
        clients.push(node.directory_client());
        controls.push(node.control_handle());
        engine.add_actor(h, Box::new(node));
    }
    engine.start();
    engine.run_until(20 * SECS);
    assert!(clients.iter().all(|c| c.member_count() == 8));

    // Node 7 leaves gracefully at t=20s: the cluster converges in about
    // one propagation time, not the 5 s failure timeout.
    controls[7].lock().push(ServiceCommand::GracefulLeave);
    engine.run_until(22 * SECS);
    for (i, c) in clients.iter().enumerate().take(7) {
        assert_eq!(
            c.member_count(),
            7,
            "node {i} did not apply the graceful leave within 2 s"
        );
    }
    let last = engine.stats().last_removal(NodeId(7)).unwrap();
    assert!(
        last <= 21 * SECS,
        "graceful leave took {} ms to converge",
        (last - 20 * SECS) / 1_000_000
    );

    // And nothing re-adds the departed node afterwards.
    engine.run_until(60 * SECS);
    assert!(clients[..7].iter().all(|c| c.member_count() == 7));
}

#[test]
fn protocol_counters_reflect_activity() {
    let cfg = MembershipConfig::default();
    let mut c = build_cluster(generators::star_of_segments(2, 5), &cfg, 83);
    c.engine.run_until(40 * SECS);

    // Node 0 (segment leader + root): claimed leaderships, sent updates
    // and digests.
    let p0 = c.probes[0].lock().counters;
    assert!(p0.leaderships_claimed >= 2, "{p0:?}");
    assert!(p0.updates_sent > 0, "{p0:?}");
    assert!(p0.digests_sent > 0, "{p0:?}");
    assert_eq!(p0.deaths_declared, 0, "{p0:?}");

    // Kill a node: survivors record the death.
    c.engine.schedule(40 * SECS, Control::Kill(HostId(9)));
    c.engine.run_until(60 * SECS);
    let p5 = c.probes[5].lock().counters;
    assert!(p5.deaths_declared >= 1, "{p5:?}");
}
