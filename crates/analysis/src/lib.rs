//! # tamp-analysis — the paper's §4 scalability model
//!
//! Closed-form expressions for the three schemes' failure-detection time,
//! view-convergence time, bandwidth, and the two combined metrics the
//! paper defines:
//!
//! * **BDT** — bandwidth–detection-time product: `B × T_detect`;
//! * **BCT** — bandwidth–convergence-time product: `B × T_converge`.
//!
//! Lower is better for both ("protocols with lower BDT values are
//! better, because they use less time to detect a failure with a fixed
//! bandwidth"). Summary of §4 (k = heartbeats missed before declaring
//! death, s = per-node record size, n = nodes, g = group size, B = total
//! bandwidth budget):
//!
//! | scheme | detection time at budget B | total bandwidth at fixed freq | BDT |
//! |---|---|---|---|
//! | all-to-all   | `k·n²·s / B`        | `O(n²)` | `O(n²·s·k)` |
//! | gossip       | `k'·n²·s·log n / B` | `O(n²)` | `O(n²·s·log n)` |
//! | hierarchical | `k·n·g·s / B`       | `O(n)`  | `O(n·s·k·g)`  |
//!
//! and convergence adds `O(log_g n · d)` tree-propagation delay for the
//! hierarchical scheme (`d` = per-hop transmission time), leaving its BCT
//! asymptotically the same.
//!
//! The harness prints these analytic curves next to the measured ones so
//! a reader can check the simulation against the model (the paper does
//! the same in §6: "These results are in line with our analysis results
//! in Section 4").

/// Model parameters shared by the three schemes.
#[derive(Debug, Clone, Copy)]
pub struct ModelParams {
    /// Cluster size.
    pub n: usize,
    /// Per-node membership record size in bytes (the paper measures 228).
    pub record_bytes: f64,
    /// Heartbeats missed before declaring a node dead (`MAX_LOSS`).
    pub max_loss: f64,
    /// Heartbeat / gossip period in seconds (at fixed-frequency
    /// operation).
    pub period_s: f64,
    /// Hierarchical group size `g`.
    pub group_size: usize,
    /// One-hop update transmission time in seconds (tree propagation).
    pub hop_time_s: f64,
    /// Gossip mistake probability (bounds `T_fail`).
    pub mistake_probability: f64,
    /// Refutable-suspicion window added before a timeout becomes a
    /// confirmed removal (the robustness extension over the paper;
    /// `MembershipConfig::suspicion_window`). 0 models the paper's
    /// immediate-removal protocol, which is the default so the §4
    /// reproduction stays exact.
    pub suspicion_s: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            n: 100,
            record_bytes: 228.0,
            max_loss: 5.0,
            period_s: 1.0,
            group_size: 20,
            hop_time_s: 0.001,
            mistake_probability: 0.001,
            suspicion_s: 0.0,
        }
    }
}

/// Analytic predictions for one scheme at fixed per-node send frequency
/// (the operating mode of the paper's experiments: "we fix the multicast
/// or gossip frequency as one packet per second").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Aggregate *received* bytes per second across the cluster.
    pub bandwidth_bytes_per_s: f64,
    /// Failure detection time, seconds.
    pub detection_s: f64,
    /// View convergence time, seconds.
    pub convergence_s: f64,
}

impl Prediction {
    /// Bandwidth × detection-time product.
    pub fn bdt(&self) -> f64 {
        self.bandwidth_bytes_per_s * self.detection_s
    }

    /// Bandwidth × convergence-time product.
    pub fn bct(&self) -> f64 {
        self.bandwidth_bytes_per_s * self.convergence_s
    }
}

/// All-to-all: every node multicasts once per period; every other node
/// receives it. Aggregate received bandwidth `n·(n−1)·s / T`; detection
/// after `k` missed heartbeats; convergence equals detection because
/// every node watches every other directly.
pub fn all_to_all(p: &ModelParams) -> Prediction {
    let n = p.n as f64;
    let bw = n * (n - 1.0) * p.record_bytes / p.period_s;
    let detect = p.max_loss * p.period_s;
    Prediction {
        bandwidth_bytes_per_s: bw,
        detection_s: detect,
        convergence_s: detect,
    }
}

/// Gossip (van Renesse): each node unicasts its whole `n·s`-byte view to
/// one random peer per period → aggregate `n²·s / T`. Detection needs a
/// counter to stay flat for `T_fail = T·(log₂ n + log₂(1/P_mistake)/2)`
/// (propagation rounds plus the safety margin that keeps the mistake
/// probability below the bound). Convergence adds another `log₂ n`
/// propagation of the *suspicion*, but since every node applies its own
/// `T_fail` to the same silent counter, the spread is one propagation
/// depth of the last pre-failure gossip: ≈ `T·log₂ n`.
pub fn gossip(p: &ModelParams) -> Prediction {
    let n = p.n as f64;
    let bw = n * n * p.record_bytes / p.period_s;
    let rounds = n.log2() + (1.0 / p.mistake_probability).log2() / 2.0;
    let detect = rounds * p.period_s;
    Prediction {
        bandwidth_bytes_per_s: bw,
        detection_s: detect,
        convergence_s: detect + n.log2() * p.period_s,
    }
}

/// Hierarchical: groups of `g` nodes; each node heartbeats in its group
/// (`g·(g−1)·s/T` received per group, `n/g` level-0 groups, plus a
/// geometrically shrinking tree of higher-level groups — the `(1 +
/// 1/g + …) ≈ g/(g−1)` factor). Detection is local: `k` missed
/// heartbeats, plus the refutable-suspicion window when the robustness
/// extension is on (`suspicion_s`; 0 by default). Convergence adds two
/// tree traversals (up to the root, down to the leaves): `2·log_g n`
/// hops.
pub fn hierarchical(p: &ModelParams) -> Prediction {
    let n = p.n as f64;
    let g = (p.group_size as f64).min(n).max(2.0);
    // Total group membership across levels: n + n/g + n/g² + … ≈ n·g/(g−1).
    let members_all_levels = n * g / (g - 1.0);
    let bw = members_all_levels * (g - 1.0) * p.record_bytes / p.period_s;
    let detect = p.max_loss * p.period_s + p.suspicion_s;
    let height = (n.ln() / g.ln()).ceil().max(1.0);
    Prediction {
        bandwidth_bytes_per_s: bw,
        detection_s: detect,
        convergence_s: detect + 2.0 * height * p.hop_time_s,
    }
}

/// Convenience: predictions for all three schemes.
pub fn all_schemes(p: &ModelParams) -> [(&'static str, Prediction); 3] {
    [
        ("all-to-all", all_to_all(p)),
        ("gossip", gossip(p)),
        ("hierarchical", hierarchical(p)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize) -> ModelParams {
        ModelParams {
            n,
            ..Default::default()
        }
    }

    #[test]
    fn all_to_all_bandwidth_is_quadratic() {
        let b100 = all_to_all(&params(100)).bandwidth_bytes_per_s;
        let b200 = all_to_all(&params(200)).bandwidth_bytes_per_s;
        let ratio = b200 / b100;
        assert!((3.9..4.2).contains(&ratio), "{ratio}");
    }

    #[test]
    fn hierarchical_bandwidth_is_linear() {
        let b100 = hierarchical(&params(100)).bandwidth_bytes_per_s;
        let b200 = hierarchical(&params(200)).bandwidth_bytes_per_s;
        let ratio = b200 / b100;
        assert!((1.9..2.1).contains(&ratio), "{ratio}");
    }

    #[test]
    fn gossip_detection_grows_with_log_n() {
        let d20 = gossip(&params(20)).detection_s;
        let d40 = gossip(&params(40)).detection_s;
        let d80 = gossip(&params(80)).detection_s;
        // Each doubling adds exactly one period.
        assert!((d40 - d20 - 1.0).abs() < 1e-9);
        assert!((d80 - d40 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heartbeat_schemes_have_constant_detection() {
        assert_eq!(all_to_all(&params(20)).detection_s, 5.0);
        assert_eq!(all_to_all(&params(4000)).detection_s, 5.0);
        assert_eq!(hierarchical(&params(4000)).detection_s, 5.0);
    }

    #[test]
    fn suspicion_term_adds_to_hierarchical_detection_only() {
        let p = ModelParams {
            suspicion_s: 2.0,
            ..Default::default()
        };
        assert_eq!(hierarchical(&p).detection_s, 7.0);
        // The comparison schemes model the paper's protocols unchanged.
        assert_eq!(
            all_to_all(&p).detection_s,
            all_to_all(&params(100)).detection_s
        );
        assert_eq!(gossip(&p).detection_s, gossip(&params(100)).detection_s);
    }

    #[test]
    fn hierarchical_has_best_bdt_at_scale() {
        let p = params(1000);
        let h = hierarchical(&p).bdt();
        let a = all_to_all(&p).bdt();
        let g = gossip(&p).bdt();
        assert!(h < a, "hierarchical {h} vs all-to-all {a}");
        assert!(h < g, "hierarchical {h} vs gossip {g}");
    }

    #[test]
    fn hierarchical_has_best_bct_at_scale() {
        let p = params(1000);
        let h = hierarchical(&p).bct();
        assert!(h < all_to_all(&p).bct());
        assert!(h < gossip(&p).bct());
    }

    #[test]
    fn all_equal_at_group_size_n_single_group() {
        // With one group of n, hierarchical degenerates to all-to-all.
        let p = ModelParams {
            n: 20,
            group_size: 20,
            ..Default::default()
        };
        let h = hierarchical(&p);
        let a = all_to_all(&p);
        let rel =
            (h.bandwidth_bytes_per_s - a.bandwidth_bytes_per_s).abs() / a.bandwidth_bytes_per_s;
        assert!(rel < 0.06, "rel err {rel}");
    }

    #[test]
    fn convergence_at_least_detection() {
        for n in [20, 100, 1000] {
            let p = params(n);
            for (_, pred) in all_schemes(&p) {
                assert!(pred.convergence_s >= pred.detection_s);
            }
        }
    }

    #[test]
    fn gossip_matches_simulated_t_fail_formula() {
        // The simulator's GossipConfig::t_fail uses the same expression;
        // keep the two in lockstep.
        let p = params(100);
        let d = gossip(&p).detection_s;
        assert!((11.0..13.0).contains(&d), "{d}");
    }
}
