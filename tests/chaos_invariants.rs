//! Property-based chaos invariants: arbitrary small fault schedules —
//! kills (by host, by leader, random), revives, a cross-segment
//! partition, and heavy loss bursts — must never make the oracle report
//! a false removal, divergent views, or a leader conflict once the
//! cluster settles.
//!
//! This drives the same machinery as `tamp-exp chaos`, but generates the
//! schedules with a proptest [`Strategy`] instead of the crate's own
//! seeded generator, so the two generators cross-check each other.

use proptest::prelude::*;
use tamp::chaos::{dsl, run_scenario, Action, ScenarioConfig, Schedule, ScheduledFault, Target};
use tamp::prelude::*;

/// An arbitrary fault action on a two-segment, `n_hosts`-node cluster.
///
/// Loss rates stay ≥ 0.30 (a burst mild enough to be sub-excusable is a
/// different test's job — see the oracle's `loss_excuse_rate`), and the
/// only partition pair is (0, 1) because the topology has two segments.
fn arb_action(n_hosts: u32) -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..n_hosts).prop_map(|h| Action::Kill(Target::Host(h))),
        (0u8..2).prop_map(|l| Action::Kill(Target::Leader(l))),
        Just(Action::Kill(Target::Random)),
        (0..n_hosts).prop_map(|h| Action::Revive(Target::Host(h))),
        Just(Action::Revive(Target::Random)),
        (30u32..=85u32, 2u64..=10u64).prop_map(|(pct, secs)| Action::Loss {
            rate: pct as f64 / 100.0,
            duration: secs * SECS,
        }),
        Just(Action::Partition(0, 1)),
    ]
}

/// Up to five timed actions in the first 70 simulated seconds. If any
/// partition was generated, a trailing `heal all` is appended so the
/// quiescence checks (which are skipped while segments are severed)
/// actually run.
fn arb_schedule(n_hosts: u32) -> impl Strategy<Value = Schedule> {
    proptest::collection::vec((5u64..70, arb_action(n_hosts)), 0..5).prop_map(|evs| {
        let mut events: Vec<ScheduledFault> = evs
            .iter()
            .map(|&(secs, action)| ScheduledFault {
                at: secs * SECS,
                action,
            })
            .collect();
        if events
            .iter()
            .any(|e| matches!(e.action, Action::Partition(..)))
        {
            let last = events.iter().map(|e| e.at).max().unwrap_or(0);
            events.push(ScheduledFault {
                at: last + 5 * SECS,
                action: Action::HealAll,
            });
        }
        Schedule::new(events)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case simulates ~2 minutes of cluster time
        .. ProptestConfig::default()
    })]

    /// No false removals, convergent views, one live local leader per
    /// group: the full oracle must pass for every generated schedule.
    #[test]
    fn chaos_schedules_uphold_oracle_invariants(
        seed in any::<u64>(),
        schedule in arb_schedule(10),
    ) {
        let run = run_scenario(&ScenarioConfig::two_segments(seed), &schedule);
        prop_assert!(
            run.passed(),
            "oracle violations under generated schedule:\n{}",
            run.report()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// Every generated schedule renders to DSL text that parses back to
    /// the identical schedule — so any failure report's embedded repro
    /// really does replay the same program.
    #[test]
    fn generated_schedules_round_trip_through_the_dsl(
        schedule in arb_schedule(10),
    ) {
        let reparsed = dsl::parse(&schedule.render())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(reparsed, schedule);
    }
}
