//! Determinism contract for the tamp-load subsystem: same seed ⇒
//! byte-identical SLO summaries and exports, run-to-run and at any
//! `--jobs` width. These are the guarantees `tamp-exp load` prints and
//! CI diffs against.

use tamp_harness::load::{collect, LoadOptions};
use tamp_load::{run_campaign, Campaign, CampaignFault, LoadScenarioConfig, WorkloadConfig};
use tamp_netsim::SECS;
use tamp_par::Pool;

fn quick_opts() -> LoadOptions {
    LoadOptions {
        users: 2_000,
        datacenters: 2,
        quick: true,
        ..Default::default()
    }
}

#[test]
fn same_seed_exports_are_byte_identical_across_runs() {
    let opts = quick_opts();
    let a = collect(&opts).unwrap();
    let b = collect(&opts).unwrap();
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.slo_csv, b.slo_csv);
    assert_eq!(a.timeline_csv, b.timeline_csv);
}

#[test]
fn different_seeds_diverge() {
    let a = collect(&quick_opts()).unwrap();
    let b = collect(&LoadOptions {
        seed: 7,
        ..quick_opts()
    })
    .unwrap();
    assert_ne!(
        a.timeline_csv, b.timeline_csv,
        "seed must reach the workload stream"
    );
}

#[test]
fn campaign_exports_match_at_any_jobs_width() {
    let mut opts = quick_opts();
    opts.users = 800;
    opts.campaign = true;
    opts.jobs = 1;
    let sequential = collect(&opts).unwrap();
    opts.jobs = 4;
    let parallel = collect(&opts).unwrap();
    assert_eq!(sequential.summary, parallel.summary);
    assert_eq!(sequential.slo_csv, parallel.slo_csv);
    assert_eq!(sequential.timeline_csv, parallel.timeline_csv);
    assert_eq!(sequential.campaign_csv, parallel.campaign_csv);
    assert_eq!(sequential.campaign_report, parallel.campaign_report);
    let report = sequential.campaign_report.unwrap();
    for fault in [
        "baseline",
        "leader-death",
        "proxy-failover",
        "wan-partition",
    ] {
        assert!(report.contains(fault), "campaign report missing {fault}");
    }
}

/// The library-level campaign API honors the same contract without the
/// harness formatting layer: raw histograms and timelines match between
/// a sequential pool and a wide one.
#[test]
fn raw_campaign_histograms_match_across_pool_widths() {
    let cfg = LoadScenarioConfig {
        users: 400,
        datacenters: 2,
        workload: WorkloadConfig {
            think_mean: 10 * SECS,
            ..Default::default()
        },
        ..Default::default()
    };
    let campaign = Campaign {
        warmup: 30 * SECS,
        duration: 20 * SECS,
        faults: vec![CampaignFault {
            name: "leader-death".to_string(),
            schedule: tamp_chaos::dsl::parse("settle 10s\nat 35s kill leader 0\n").unwrap(),
        }],
    };
    let a = run_campaign(&cfg, &campaign, &Pool::sequential());
    let b = run_campaign(&cfg, &campaign, &Pool::new(8));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.resolved, y.resolved);
        assert_eq!(x.summary.issued, y.summary.issued);
        assert_eq!(x.summary.errors, y.summary.errors);
        assert_eq!(x.summary.overall.buckets, y.summary.overall.buckets);
        for (hx, hy) in x.summary.per_partition.iter().zip(&y.summary.per_partition) {
            assert_eq!(hx.buckets, hy.buckets);
        }
        let cx: Vec<(u64, u64)> = x
            .summary
            .cells
            .iter()
            .map(|c| (c.completed, c.failed))
            .collect();
        let cy: Vec<(u64, u64)> = y
            .summary
            .cells
            .iter()
            .map(|c| (c.completed, c.failed))
            .collect();
        assert_eq!(cx, cy);
    }
}
