//! Differential lock on the zero-copy wire path: the engine's three
//! delivery modes must be *indistinguishable* — not just "all correct".
//!
//! - `wire_codec: None` — the reference in-memory mode: actors receive
//!   the sender's `Message` value; only `encoded_len` runs per send.
//! - `Some(CodecKind::Owned)` — every send is encoded once, every
//!   delivery runs the owned reference decoder.
//! - `Some(CodecKind::Borrowed)` — same encode-once sends, but
//!   deliveries parse a zero-copy `MessageView` and take the actors'
//!   borrowed fast paths (lazy record materialization, in-place digest
//!   iteration).
//!
//! Identical seeds must yield byte-identical event traces, final
//! per-node directory views, telemetry snapshots, and traffic totals,
//! at every size, with a mid-run crash and revival in the schedule.
//! Any divergence means the borrowed views read bytes differently than
//! the owned decoder, or a zero-copy fast path changed protocol
//! behaviour — exactly the bug class this refactor must exclude.
//!
//! The runs execute in the debug profile, so every directory mutation
//! also re-checks the incremental anti-entropy digest against a full
//! rescan (a `debug_assert` in `tamp-directory`): the same sweep
//! doubles as the chaos-grade digest differential.

use tamp::directory::Provenance;
use tamp::netsim::telemetry::snapshot_to_csv;
use tamp::netsim::TraceConfig;
use tamp::prelude::*;
use tamp::wire::CodecKind;

/// One directory entry, flattened for comparison.
type ViewEntry = (u32, u64, String, u64);

/// Everything observable about a finished run.
struct Fingerprint {
    trace: Vec<String>,
    total_recorded: u64,
    views: Vec<Vec<ViewEntry>>,
    metrics_csv: String,
    totals: (u64, u64, u64, u64, u64),
}

const MODES: [Option<CodecKind>; 3] = [None, Some(CodecKind::Owned), Some(CodecKind::Borrowed)];

fn mode_name(mode: Option<CodecKind>) -> &'static str {
    match mode {
        None => "in-memory",
        Some(CodecKind::Owned) => "wire-owned",
        Some(CodecKind::Borrowed) => "wire-borrowed",
    }
}

fn run_cluster(n: usize, seed: u64, mode: Option<CodecKind>) -> Fingerprint {
    let segments = (n / 20).max(1);
    let topo = generators::star_of_segments(segments, n / segments);
    let cfg = EngineConfig {
        trace: TraceConfig {
            capacity: 400_000,
            include_timers: true,
            ..TraceConfig::all()
        },
        metrics: true,
        wire_codec: mode,
        ..Default::default()
    };
    let mut engine = Engine::new(topo, cfg, seed);
    let mut clients = Vec::new();
    for h in engine.hosts() {
        let node = MembershipNode::new(NodeId(h.0), MembershipConfig::default());
        clients.push(node.directory_client());
        engine.add_actor(h, Box::new(node));
    }
    // Crash the last host mid-run and revive it: exercises the rejoin
    // path (bootstrap exchanges, refutations) under every codec mode.
    let victim = HostId(n as u32 - 1);
    engine.schedule(12 * SECS, Control::Kill(victim));
    engine.schedule(15 * SECS, Control::Revive(victim));
    engine.start();
    engine.run_until(18 * SECS);

    let views = clients
        .iter()
        .map(|c| {
            c.read(|d| {
                let mut v: Vec<ViewEntry> = d
                    .entries()
                    .map(|e| {
                        let prov = match e.provenance {
                            Provenance::Local => "local".to_string(),
                            p => format!("{p:?}"),
                        };
                        (e.record.node.0, e.record.incarnation, prov, e.last_refresh)
                    })
                    .collect();
                v.sort();
                v
            })
        })
        .collect();
    let t = engine.stats().totals();
    Fingerprint {
        trace: engine
            .trace_log()
            .records()
            .map(tamp::netsim::TraceLog::render)
            .collect(),
        total_recorded: engine.trace_log().total_recorded(),
        views,
        metrics_csv: snapshot_to_csv(&engine.registry().snapshot()),
        totals: (
            t.sent_pkts,
            t.sent_bytes,
            t.recv_pkts,
            t.recv_bytes,
            t.dropped_pkts,
        ),
    }
}

/// Run every (seed, mode) triple for one size across a worker pool
/// (width from `TAMP_JOBS`, default `available_parallelism`; the runs
/// are sealed deterministic worlds, so any width yields the same
/// fingerprints), then compare both wire modes against the in-memory
/// reference per seed in order.
fn assert_identical_all(n: usize) {
    let pool = tamp::par::Pool::from_env();
    let seeds: Vec<u64> = SEEDS.collect();
    let fps = pool.ordered_map(seeds.len() * MODES.len(), |i| {
        run_cluster(n, seeds[i / MODES.len()], MODES[i % MODES.len()])
    });
    for (si, triple) in fps.chunks(MODES.len()).enumerate() {
        let reference = &triple[0];
        for (mi, got) in triple.iter().enumerate().skip(1) {
            compare(n, seeds[si], mode_name(MODES[mi]), reference, got);
        }
    }
}

fn compare(n: usize, seed: u64, mode: &str, reference: &Fingerprint, got: &Fingerprint) {
    assert_eq!(
        reference.total_recorded, got.total_recorded,
        "n={n} seed={seed} {mode}: trace event counts diverge"
    );
    if reference.trace != got.trace {
        let i = reference
            .trace
            .iter()
            .zip(&got.trace)
            .position(|(a, b)| a != b)
            .unwrap_or(reference.trace.len().min(got.trace.len()));
        let lo = i.saturating_sub(2);
        let hi = (i + 3).min(reference.trace.len()).min(got.trace.len());
        panic!(
            "n={n} seed={seed} {mode}: traces diverge at record {i}\n  in-memory: {:#?}\n  {mode}: {:#?}",
            &reference.trace[lo..hi],
            &got.trace[lo..hi],
        );
    }
    for (host, (w, h)) in reference.views.iter().zip(&got.views).enumerate() {
        assert_eq!(
            w, h,
            "n={n} seed={seed} {mode}: host {host} final view diverges"
        );
    }
    assert_eq!(
        reference.metrics_csv, got.metrics_csv,
        "n={n} seed={seed} {mode}: telemetry snapshots diverge"
    );
    assert_eq!(
        reference.totals, got.totals,
        "n={n} seed={seed} {mode}: traffic totals diverge"
    );
}

const SEEDS: std::ops::Range<u64> = 2005..2015;

#[test]
fn codec_modes_indistinguishable_n20() {
    assert_identical_all(20);
}

#[test]
fn codec_modes_indistinguishable_n60() {
    assert_identical_all(60);
}

#[test]
fn codec_modes_indistinguishable_n100() {
    assert_identical_all(100);
}
