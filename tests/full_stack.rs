//! Whole-system integration: membership + directory + proxies + service
//! framework, composed across crates exactly as a deployment would.

use tamp::neptune::search::{build, SearchOptions};
use tamp::prelude::*;
use tamp::wire::DcId;

#[test]
fn config_file_to_running_cluster() {
    // From the paper's Fig. 7 configuration format all the way to
    // cluster-wide lookups.
    let config_text = r#"
*SYSTEM
SHM_KEY = 999
MAX_TTL = 4
MCAST_FREQ = 1
MAX_LOSS = 5

*SERVICE
[HTTP]
    PARTITION = 0
    Port = 8080
"#;
    let topo = generators::star_of_segments(2, 4);
    let mut engine = Engine::new(topo, EngineConfig::default(), 31);
    let mut clients = Vec::new();
    for h in engine.hosts() {
        let mut svc = MService::new(NodeId(h.0), Some(config_text)).unwrap();
        svc.register_service("Retriever", &format!("{}", h.0 % 3))
            .unwrap();
        svc.update_value("rack", &format!("r{}", h.0 / 4));
        clients.push(svc.client());
        engine.add_actor(h, Box::new(svc.run()));
    }
    engine.start();
    engine.run_until(25 * SECS);

    // Every node sees every service, with both the config-file service
    // and the runtime-registered one.
    for c in &clients {
        assert_eq!(c.member_count(), 8);
        let http = c.lookup_service("HTTP", "0").unwrap();
        assert_eq!(http.len(), 8);
        assert!(http[0]
            .attrs
            .iter()
            .any(|(k, v)| k == "Port" && v == "8080"));
        let retr = c.lookup_service("Retriever", "1").unwrap();
        assert_eq!(retr.len(), 3, "hosts 1, 4, 7 host partition 1");
        assert!(retr[0].attrs.iter().any(|(k, _)| k == "rack"));
    }
}

#[test]
fn runtime_value_updates_propagate() {
    let topo = generators::single_segment(4);
    let mut engine = Engine::new(topo, EngineConfig::default(), 33);
    let hosts = engine.hosts();

    // Three plain nodes...
    let mut clients = Vec::new();
    for &h in &hosts[..3] {
        let node = MembershipNode::new(NodeId(h.0), MembershipConfig::default());
        clients.push(node.directory_client());
        engine.add_actor(h, Box::new(node));
    }
    // ...and one whose record changes at runtime via a custom actor
    // wrapper is overkill — update_value applies when the node is built.
    let mut svc = MService::new(NodeId(hosts[3].0), None).unwrap();
    svc.register_service("cache", "0-2").unwrap();
    svc.update_value("version", "7");
    engine.add_actor(hosts[3], Box::new(svc.run()));

    engine.start();
    engine.run_until(10 * SECS);

    let m = clients[0].lookup_service("cache", "1").unwrap();
    assert_eq!(m.len(), 1);
    assert!(m[0].attrs.iter().any(|(k, v)| k == "version" && v == "7"));
}

#[test]
fn two_dc_deployment_survives_compound_failures() {
    // Compound fault schedule: lose a doc replica, then the proxy
    // leader, then a whole doc partition, under 2% packet loss.
    let opts = SearchOptions {
        seed: 99,
        ..Default::default()
    };
    let mut s = build(&opts);
    // 2% loss across the cluster.
    // (EngineConfig is baked at build; emulate by scheduling failures
    // only — loss variants are covered by the harness ablation A2.)
    let doc0 = s.doc_providers[0].clone();
    s.engine.schedule(15 * SECS, Control::Kill(doc0[0]));
    s.engine.schedule(25 * SECS, Control::Kill(s.proxies[0][0]));
    for &h in &doc0[3..6] {
        // all replicas of partition 1
        s.engine.schedule(35 * SECS, Control::Kill(h));
    }
    s.engine.start();
    s.engine.run_until(70 * SECS);

    let m = s.gateway_metrics[0][0].lock();
    // The service kept answering: most of the issued queries completed.
    let done = m.completed.len() as f64;
    let issued = m.issued as f64;
    assert!(
        done / issued > 0.90,
        "only {done}/{issued} completed under compound failures"
    );
    // Partition-1 queries after t=35 must have been served remotely.
    assert!(m.remote_served > 0);
    // The VIP failed over to the surviving proxy.
    assert_eq!(
        s.vips.get(DcId(0)),
        Some(NodeId(s.proxies[0][1].0)),
        "VIP did not move"
    );
}

#[test]
fn node_churn_converges_to_truth() {
    // Repeated join/leave churn; at the end, every survivor's view must
    // equal exactly the set of live nodes.
    let topo = generators::star_of_segments(3, 5);
    let mut engine = Engine::new(topo, EngineConfig::default(), 35);
    let mut clients = Vec::new();
    for h in engine.hosts() {
        let node = MembershipNode::new(NodeId(h.0), MembershipConfig::default());
        clients.push(node.directory_client());
        engine.add_actor(h, Box::new(node));
    }
    engine.start();

    // Churn: kill 3, revive 2, kill 1 more.
    engine.schedule(20 * SECS, Control::Kill(HostId(4)));
    engine.schedule(22 * SECS, Control::Kill(HostId(9)));
    engine.schedule(24 * SECS, Control::Kill(HostId(14)));
    engine.schedule(40 * SECS, Control::Revive(HostId(4)));
    engine.schedule(42 * SECS, Control::Revive(HostId(9)));
    engine.schedule(50 * SECS, Control::Kill(HostId(2)));
    engine.run_until(100 * SECS);

    let live: Vec<u32> = (0..15u32).filter(|&i| engine.is_alive(HostId(i))).collect();
    assert_eq!(live.len(), 13);
    for &i in &live {
        let mut seen: Vec<u32> = clients[i as usize].read(|d| d.nodes().map(|n| n.0).collect());
        seen.sort();
        assert_eq!(seen, live, "node {i} view wrong after churn");
    }
}

#[test]
fn deterministic_end_to_end() {
    // The same seed reproduces byte-identical outcomes across the whole
    // stack; different seeds differ.
    fn run(seed: u64) -> (usize, u64, u64) {
        let opts = SearchOptions {
            seed,
            ..Default::default()
        };
        let mut s = build(&opts);
        s.engine
            .schedule(20 * SECS, Control::Kill(s.doc_providers[0][0]));
        s.engine.start();
        s.engine.run_until(40 * SECS);
        let m = s.gateway_metrics[0][0].lock();
        let totals = s.engine.stats().totals();
        (m.completed.len(), totals.recv_bytes, totals.recv_pkts)
    }
    assert_eq!(run(1234), run(1234));
    assert_ne!(run(1234), run(5678));
}
