//! The tentpole contract of `tamp-par`, locked end-to-end: a chaos
//! sweep spread over a worker pool must be **byte-identical** to the
//! sequential sweep — same report text, same pass/fail verdicts, same
//! first-failure seed, same shrunk repro, same merged telemetry — for
//! any pool width. Execution order is allowed to differ; nothing
//! observable is.

use tamp::chaos::{sweep_on, GeneratorConfig, ScenarioConfig, SweepReport};
use tamp::membership::MembershipConfig;
use tamp::par::Pool;

fn passing_sweep(jobs: usize) -> SweepReport {
    sweep_on(
        &Pool::new(jobs),
        0,
        3,
        &GeneratorConfig::default(),
        ScenarioConfig::two_segments,
    )
}

/// `MAX_LOSS = 0` makes the detection timeout shorter than the
/// heartbeat period, so every schedule fails: the sweep stops at its
/// first seed and shrinks — exercising the early-stop and the parallel
/// shrinker's candidate scan. The cluster and fault window are kept
/// small: the broken config fails within the first sweep tick, and the
/// suspicion storm it triggers makes each simulated second expensive
/// (this test runs in debug CI).
fn failing_sweep(jobs: usize) -> SweepReport {
    let g = GeneratorConfig {
        num_hosts: 6,
        active_window_secs: 12,
        max_events: 4,
        ..GeneratorConfig::default()
    };
    sweep_on(&Pool::new(jobs), 1, 3, &g, |seed| ScenarioConfig {
        topo: tamp::topology::generators::star_of_segments(2, 3),
        membership: MembershipConfig {
            max_loss: 0,
            ..Default::default()
        },
        ..ScenarioConfig::two_segments(seed)
    })
}

#[test]
fn parallel_passing_sweep_is_byte_identical_to_sequential() {
    let seq = passing_sweep(1);
    let par = passing_sweep(4);
    assert_eq!(seq.runs, par.runs, "verdict list diverges");
    assert_eq!(
        seq.report(),
        par.report(),
        "report bytes diverge between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        seq.metrics, par.metrics,
        "merged telemetry diverges — merge must be order-insensitive"
    );
    assert!(seq.passed());
}

#[test]
fn parallel_failing_sweep_and_shrink_are_byte_identical_to_sequential() {
    let seq = failing_sweep(1);
    let par = failing_sweep(4);
    assert_eq!(
        seq.report(),
        par.report(),
        "failure report bytes diverge between --jobs 1 and --jobs 4"
    );
    let (sf, pf) = (
        seq.failure.as_ref().expect("broken config must fail"),
        par.failure.as_ref().expect("broken config must fail"),
    );
    assert_eq!(sf.seed, pf.seed, "first-failure seed diverges");
    assert_eq!(
        sf.shrunk.render(),
        pf.shrunk.render(),
        "shrunk repro diverges — parallel candidate scan must adopt the same deletions"
    );
    assert_eq!(
        sf.run.report(),
        pf.run.report(),
        "shrunk run report diverges"
    );
    // The sweep stopped at the first failing seed in both modes:
    // speculative results for later seeds were discarded unseen.
    assert_eq!(seq.runs.len(), par.runs.len());
    assert_eq!(seq.runs.last().map(|&(_, p)| p), Some(false));
}
