//! Differential lock on the scheduler rewrite: the production timer
//! wheel and the reference binary heap must be *indistinguishable* —
//! not just "both correct". Identical seeds must yield byte-identical
//! event traces, final per-node directory views, telemetry snapshots,
//! and traffic totals, at every size, with a mid-run crash and revival
//! in the schedule (epoch-stale timer discards included).
//!
//! Any divergence means the wheel reordered two same-time events — the
//! exact class of bug that silently breaks every golden file downstream.

use tamp::directory::Provenance;
use tamp::netsim::telemetry::snapshot_to_csv;
use tamp::netsim::{SchedulerKind, TraceConfig};
use tamp::prelude::*;

/// One directory entry, flattened for comparison.
type ViewEntry = (u32, u64, String, u64);

/// Everything observable about a finished run.
struct Fingerprint {
    trace: Vec<String>,
    total_recorded: u64,
    views: Vec<Vec<ViewEntry>>,
    metrics_csv: String,
    totals: (u64, u64, u64, u64, u64),
}

fn run_cluster(n: usize, seed: u64, kind: SchedulerKind) -> Fingerprint {
    let segments = (n / 20).max(1);
    let topo = generators::star_of_segments(segments, n / segments);
    let cfg = EngineConfig {
        trace: TraceConfig {
            capacity: 400_000,
            include_timers: true,
            ..TraceConfig::all()
        },
        metrics: true,
        scheduler: kind,
        ..Default::default()
    };
    let mut engine = Engine::new(topo, cfg, seed);
    let mut clients = Vec::new();
    for h in engine.hosts() {
        let node = MembershipNode::new(NodeId(h.0), MembershipConfig::default());
        clients.push(node.directory_client());
        engine.add_actor(h, Box::new(node));
    }
    // Crash the last host mid-run and revive it: exercises control
    // events, epoch-stale timer discards, and the rejoin path.
    let victim = HostId(n as u32 - 1);
    engine.schedule(12 * SECS, Control::Kill(victim));
    engine.schedule(15 * SECS, Control::Revive(victim));
    engine.start();
    engine.run_until(18 * SECS);

    let views = clients
        .iter()
        .map(|c| {
            c.read(|d| {
                let mut v: Vec<ViewEntry> = d
                    .entries()
                    .map(|e| {
                        let prov = match e.provenance {
                            Provenance::Local => "local".to_string(),
                            p => format!("{p:?}"),
                        };
                        (e.record.node.0, e.record.incarnation, prov, e.last_refresh)
                    })
                    .collect();
                v.sort();
                v
            })
        })
        .collect();
    let t = engine.stats().totals();
    Fingerprint {
        trace: engine
            .trace_log()
            .records()
            .map(tamp::netsim::TraceLog::render)
            .collect(),
        total_recorded: engine.trace_log().total_recorded(),
        views,
        metrics_csv: snapshot_to_csv(&engine.registry().snapshot()),
        totals: (
            t.sent_pkts,
            t.sent_bytes,
            t.recv_pkts,
            t.recv_bytes,
            t.dropped_pkts,
        ),
    }
}

/// Run every (seed, scheduler) pair for one size across a worker pool
/// (width from `TAMP_JOBS`, default `available_parallelism`; the runs
/// are sealed deterministic worlds, so any width yields the same
/// fingerprints), then compare wheel vs heap per seed in order.
fn assert_identical_all(n: usize) {
    let pool = tamp::par::Pool::from_env();
    let seeds: Vec<u64> = SEEDS.collect();
    let fps = pool.ordered_map(seeds.len() * 2, |i| {
        let kind = if i % 2 == 0 {
            SchedulerKind::TimerWheel
        } else {
            SchedulerKind::ReferenceHeap
        };
        run_cluster(n, seeds[i / 2], kind)
    });
    for (si, pair) in fps.chunks(2).enumerate() {
        compare(n, seeds[si], &pair[0], &pair[1]);
    }
}

fn compare(n: usize, seed: u64, wheel: &Fingerprint, heap: &Fingerprint) {
    assert_eq!(
        wheel.total_recorded, heap.total_recorded,
        "n={n} seed={seed}: trace event counts diverge"
    );
    if wheel.trace != heap.trace {
        let i = wheel
            .trace
            .iter()
            .zip(&heap.trace)
            .position(|(a, b)| a != b)
            .unwrap_or(wheel.trace.len().min(heap.trace.len()));
        let lo = i.saturating_sub(2);
        let hi = (i + 3).min(wheel.trace.len()).min(heap.trace.len());
        panic!(
            "n={n} seed={seed}: traces diverge at record {i}\n  wheel: {:#?}\n  heap:  {:#?}",
            &wheel.trace[lo..hi],
            &heap.trace[lo..hi],
        );
    }
    for (host, (w, h)) in wheel.views.iter().zip(&heap.views).enumerate() {
        assert_eq!(w, h, "n={n} seed={seed}: host {host} final view diverges");
    }
    assert_eq!(
        wheel.metrics_csv, heap.metrics_csv,
        "n={n} seed={seed}: telemetry snapshots diverge"
    );
    assert_eq!(
        wheel.totals, heap.totals,
        "n={n} seed={seed}: traffic totals diverge"
    );
}

const SEEDS: std::ops::Range<u64> = 2005..2015;

#[test]
fn schedulers_indistinguishable_n20() {
    assert_identical_all(20);
}

#[test]
fn schedulers_indistinguishable_n60() {
    assert_identical_all(60);
}

#[test]
fn schedulers_indistinguishable_n100() {
    assert_identical_all(100);
}
