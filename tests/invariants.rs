//! Property-based whole-system invariants: random fault schedules under
//! random loss must always end in a correct, convergent cluster.

use proptest::prelude::*;
use tamp::prelude::*;

/// A randomly generated fault schedule.
#[derive(Debug, Clone)]
struct FaultPlan {
    seed: u64,
    loss: f64,
    /// (victim index, kill second, revive second or 0 for none).
    faults: Vec<(u8, u8, u8)>,
}

fn arb_plan(n_hosts: u8) -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0.0..0.08f64,
        proptest::collection::vec(
            (0..n_hosts, 20u8..40, prop_oneof![Just(0u8), 45u8..60]),
            0..3,
        ),
    )
        .prop_map(|(seed, loss, faults)| FaultPlan { seed, loss, faults })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case simulates ~2 minutes of cluster time
        .. ProptestConfig::default()
    })]

    /// After any small fault schedule plus loss, every surviving node's
    /// membership view equals exactly the set of live nodes, and every
    /// death was observed cluster-wide.
    #[test]
    fn views_always_converge_to_live_set(plan in arb_plan(10)) {
        let topo = generators::star_of_segments(2, 5);
        let cfg = EngineConfig {
            loss: LossModel { rate: plan.loss },
            ..Default::default()
        };
        let mut engine = Engine::new(topo, cfg, plan.seed);
        let mut clients = Vec::new();
        for h in engine.hosts() {
            let node = MembershipNode::new(NodeId(h.0), MembershipConfig::default());
            clients.push(node.directory_client());
            engine.add_actor(h, Box::new(node));
        }
        engine.start();

        for &(victim, kill_s, revive_s) in &plan.faults {
            engine.schedule(kill_s as u64 * SECS, Control::Kill(HostId(victim as u32)));
            if revive_s > 0 {
                engine.schedule(revive_s as u64 * SECS, Control::Revive(HostId(victim as u32)));
            }
        }
        // Long horizon: every repair mechanism (sync polls, digests,
        // tombstone expiry) gets to run several times.
        engine.run_until(120 * SECS);

        let live: Vec<u32> = (0..10u32)
            .filter(|&i| engine.is_alive(HostId(i)))
            .collect();
        for &i in &live {
            let mut seen: Vec<u32> = clients[i as usize].read(|d| d.nodes().map(|n| n.0).collect());
            seen.sort();
            prop_assert_eq!(
                &seen, &live,
                "node {} view diverged under plan {:?}", i, plan
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// The directory lookup honors arbitrary partition assignments: any
    /// partition that some node hosts is found from every node, and no
    /// lookup invents instances.
    #[test]
    fn lookup_is_complete_and_sound(
        partitions in proptest::collection::vec(0u16..6, 8),
        seed in any::<u64>(),
    ) {
        let topo = generators::star_of_segments(2, 4);
        let mut engine = Engine::new(topo, EngineConfig::default(), seed);
        let mut clients = Vec::new();
        for (i, h) in engine.hosts().into_iter().enumerate() {
            let cfg = MembershipConfig {
                services: vec![ServiceDecl::new(
                    "svc",
                    PartitionSet::from_iter([partitions[i]]),
                )],
                ..Default::default()
            };
            let node = MembershipNode::new(NodeId(h.0), cfg);
            clients.push(node.directory_client());
            engine.add_actor(h, Box::new(node));
        }
        engine.start();
        engine.run_until(25 * SECS);

        for part in 0u16..6 {
            let expected: Vec<u32> = partitions
                .iter()
                .enumerate()
                .filter(|(_, &p)| p == part)
                .map(|(i, _)| i as u32)
                .collect();
            for c in &clients {
                let mut got: Vec<u32> = c
                    .lookup_service("svc", &part.to_string())
                    .unwrap()
                    .into_iter()
                    .map(|m| m.node.0)
                    .collect();
                got.sort();
                prop_assert_eq!(&got, &expected, "partition {}", part);
            }
        }
    }
}
