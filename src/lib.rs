//! # TAMP — Topology-Adaptive Membership Protocol
//!
//! A production-quality Rust implementation of the hierarchical,
//! topology-adaptive membership service of **Chu, Zhou & Yang,
//! "An Efficient Topology-Adaptive Membership Protocol for Large-Scale
//! Network Services" (IPDPS 2005)**, together with everything needed to
//! reproduce the paper's evaluation: the all-to-all and gossip baseline
//! protocols, a deterministic discrete-event cluster simulator with
//! TTL-scoped multicast, the cross-datacenter membership-proxy protocol,
//! and a Neptune-style service framework with the prototype search
//! engine.
//!
//! This crate is a facade: it re-exports the public API of every
//! workspace crate under one roof. Depend on the individual crates for
//! finer-grained builds.
//!
//! ## The 60-second tour
//!
//! ```
//! use tamp::prelude::*;
//!
//! // A cluster of 2 layer-2 networks × 5 nodes behind one router.
//! let topo = generators::star_of_segments(2, 5);
//! let mut engine = Engine::new(topo, EngineConfig::default(), 42);
//!
//! // Every host runs the hierarchical membership protocol and exports
//! // a service.
//! let mut clients = Vec::new();
//! for h in engine.hosts() {
//!     let mut cfg = MembershipConfig::default();
//!     cfg.services = vec![ServiceDecl::new(
//!         "kv-store",
//!         PartitionSet::from_iter([(h.0 % 2) as u16]),
//!     )];
//!     let node = MembershipNode::new(NodeId(h.0), cfg);
//!     clients.push(node.directory_client());
//!     engine.add_actor(h, Box::new(node));
//! }
//!
//! engine.start();
//! engine.run_until(20 * SECS);
//!
//! // Every node has the complete yellow pages and can route by
//! // (service, partition) with regex matching.
//! assert!(clients.iter().all(|c| c.member_count() == 10));
//! let machines = clients[0].lookup_service("kv-.*", "1").unwrap();
//! assert_eq!(machines.len(), 5);
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | What it is |
//! |---|---|---|
//! | [`topology`]   | `tamp-topology`   | Hosts / segments / routers, TTL distances, generators |
//! | [`wire`]       | `tamp-wire`       | Message types + binary codec |
//! | [`regexlite`]  | `tamp-regexlite`  | Small linear-time regex engine |
//! | [`directory`]  | `tamp-directory`  | The yellow-page directory |
//! | [`netsim`]     | `tamp-netsim`     | Deterministic discrete-event simulator |
//! | [`membership`] | `tamp-membership` | **The paper's protocol** |
//! | [`baselines`]  | `tamp-baselines`  | All-to-all + gossip comparison protocols |
//! | [`proxy`]      | `tamp-proxy`      | Cross-datacenter membership proxies |
//! | [`neptune`]    | `tamp-neptune`    | Service framework + prototype search engine |
//! | [`runtime`]    | `tamp-runtime`    | Real-time UDP driver for the same actors |
//! | [`analysis`]   | `tamp-analysis`   | §4 closed-form scalability model |
//! | [`chaos`]      | `tamp-chaos`      | Fault-injection scenarios + invariant oracle |
//! | [`par`]        | `tamp-par`        | Deterministic parallel run-orchestration |
//! | [`load`]       | `tamp-load`       | Production-scale workload generation + SLO measurement |

pub use tamp_analysis as analysis;
pub use tamp_baselines as baselines;
pub use tamp_chaos as chaos;
pub use tamp_directory as directory;
pub use tamp_load as load;
pub use tamp_membership as membership;
pub use tamp_neptune as neptune;
pub use tamp_netsim as netsim;
pub use tamp_par as par;
pub use tamp_proxy as proxy;
pub use tamp_regexlite as regexlite;
pub use tamp_runtime as runtime;
pub use tamp_topology as topology;
pub use tamp_wire as wire;

/// Everything most applications need, in one `use`.
pub mod prelude {
    pub use tamp_directory::{DirectoryClient, LookupQuery, Machine};
    pub use tamp_membership::{MClient, MService, MembershipConfig, MembershipNode};
    pub use tamp_netsim::{
        Actor, ChannelId, Context, Control, Engine, EngineConfig, LossModel, PacketMeta, SimTime,
        MICROS, MILLIS, SECS,
    };
    pub use tamp_topology::{generators, HostId, Topology, TopologyBuilder};
    pub use tamp_wire::{NodeId, NodeRecord, PartitionSet, ServiceDecl};
}
